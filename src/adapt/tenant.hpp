// adapt::RungGovernor — the adaptive controller's policy/billing core for
// non-GEMM tenants.
//
// The Controller in controller.hpp is the GEMM-shaped face of the adaptive
// subsystem (it implements nn::TileScheduler). Workloads with a different
// work-unit shape — a JPEG block stripe, a SUSAN tile — need the same
// machinery minus the GEMM plumbing: a HysteresisPolicy over a Ladder, a
// single shared hardware rung where every physical change is a billed
// SwapEvent, honest double-charging of rejected units, and the amortized
// Report ledger. RungGovernor is exactly that slice, with the drift
// estimate supplied by the tenant (the JPEG pipeline feeds a PSNR-derived
// shadow error; see jpeg/adaptive.hpp).
//
// Per work unit:
//   decide(unit)            -> rung to compute the unit at (bills a swap
//                              when the fabric has to move)
//   charge_macs(rung, n)    -> bill the unit's compute at that rung
//   observe(unit, estimate) -> feed the policy; true means hard SLO
//                              violation: recompute the unit at the
//                              escalated rung (the first attempt stays on
//                              the bill)
// The exact top rung's estimate is identically zero for shadow-based
// monitors, so the recompute loop always terminates.
#pragma once

#include <cstdint>
#include <string>

#include "adapt/controller.hpp"
#include "adapt/ladder.hpp"
#include "adapt/report.hpp"

namespace axmult::adapt {

class RungGovernor {
 public:
  /// `tenant` names the single ledger slice (the Report's "layer").
  /// Throws like Controller on an empty ladder, a non-exact top rung or an
  /// invalid policy config.
  RungGovernor(Ladder ladder, const PolicyConfig& policy, std::string tenant);

  [[nodiscard]] const Ladder& ladder() const noexcept { return ladder_; }
  /// The policy's current target rung.
  [[nodiscard]] std::size_t current_rung() const noexcept { return policy_.rung(); }

  /// Rung the next work unit must be computed at; records a SwapEvent when
  /// this moves the fabric.
  [[nodiscard]] std::size_t decide(std::uint64_t unit);

  /// Bills `macs` MAC operations at `rung` (call once per computation,
  /// recomputations included).
  void charge_macs(std::size_t rung, std::uint64_t macs);

  /// Bills the monitor's own exact-shadow work (charged at the exact top
  /// rung by Report::finalize).
  void charge_monitor_macs(std::uint64_t macs);

  /// Feeds one monitoring window's drift estimate. Returns true when the
  /// unit must be recomputed at the escalated rung (hard SLO violation).
  [[nodiscard]] bool observe(std::uint64_t unit, double estimate);

  /// Finalized ledger amortized over `work_count` served units (images,
  /// frames, inferences — the tenant's natural denominator).
  [[nodiscard]] Report report(std::uint64_t work_count) const;

 private:
  Ladder ladder_;
  PolicyConfig policy_cfg_;
  HysteresisPolicy policy_;
  std::string tenant_;
  std::size_t hw_rung_;
  std::size_t max_trajectory_ = 4096;
  Report ledger_;
};

}  // namespace axmult::adapt
