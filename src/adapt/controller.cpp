#include "adapt/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace axmult::adapt {

HysteresisPolicy::HysteresisPolicy(const PolicyConfig& cfg, std::size_t rung_count)
    : cfg_(cfg), count_(rung_count), required_hold_(std::max(1u, cfg.hold_windows)) {
  if (rung_count == 0) throw std::invalid_argument("HysteresisPolicy: empty ladder");
  rung_ = cfg.start_cheap ? 0 : rung_count - 1;
  if (cfg.down_margin >= cfg.up_margin) {
    throw std::invalid_argument("HysteresisPolicy: down_margin must be < up_margin "
                                "(the hysteresis band is what prevents oscillation)");
  }
}

HysteresisPolicy::Action HysteresisPolicy::update(double estimate) {
  ++window_;
  if (estimate >= cfg_.slo * cfg_.up_margin) {
    calm_ = 0;
    // Climbing back right after a downgrade means the downgrade was
    // premature — double the calm requirement (bounded) before trying
    // again.
    if (downgraded_ && window_ - last_down_window_ <= required_hold_) {
      required_hold_ = std::min(required_hold_ * 2, std::max(1u, cfg_.max_hold));
    }
    if (rung_ + 1 < count_) {
      ++rung_;
      return Action::kUp;
    }
    return Action::kHold;
  }
  if (estimate < cfg_.slo * cfg_.down_margin && rung_ > 0) {
    if (++calm_ >= required_hold_) {
      calm_ = 0;
      --rung_;
      last_down_window_ = window_;
      downgraded_ = true;
      return Action::kDown;
    }
  } else {
    calm_ = 0;
  }
  return Action::kHold;
}

Controller::Controller(Ladder ladder, const ControllerConfig& cfg)
    : ladder_(std::move(ladder)), cfg_(cfg), monitor_(cfg.monitor) {
  if (ladder_.size() == 0) throw std::invalid_argument("Controller: empty ladder");
  (void)HysteresisPolicy(cfg_.policy, ladder_.size());  // validate the config up front
  if (!ladder_.rungs.back().backend->exact()) {
    throw std::invalid_argument("Controller: ladder top rung must be exact");
  }
  ledger_.slo = cfg.policy.slo;
  for (const Rung& r : ladder_.rungs) {
    ledger_.rung_names.push_back(r.name);
    ledger_.rung_energy_per_mac_au.push_back(r.dynamic_cost.energy_per_mac_au);
    ledger_.rung_critical_path_ns.push_back(r.dynamic_cost.critical_path_ns);
  }
}

LayerAdaptStats& Controller::layer_stats(const std::string& name) {
  for (LayerAdaptStats& ls : ledger_.layers) {
    if (ls.layer == name) return ls;
  }
  LayerAdaptStats ls;
  ls.layer = name;
  ls.macs_by_rung.assign(ladder_.size(), 0);
  ledger_.layers.push_back(std::move(ls));
  return ledger_.layers.back();
}

void Controller::begin_gemm(const std::string& layer_name, std::size_t m, std::size_t k_dim,
                            std::size_t n, const nn::RequantState* rq) {
  (void)m;
  ++gemm_ordinal_;
  layer_ = layer_name;
  k_dim_ = k_dim;
  n_ = n;
  rq_ = rq;
  pending_recompute_ = false;
  slack_ = 1.0;
  for (const auto& [name, slack] : cfg_.layer_slack) {
    if (name == layer_name) slack_ = std::max(1.0, slack);
  }
  for (auto& [name, policy] : policies_) {
    if (name == layer_name) {
      policy_ = &policy;
      return;
    }
  }
  policies_.reserve(policies_.size() + 1);
  policies_.emplace_back(layer_name, HysteresisPolicy(cfg_.policy, ladder_.size()));
  policy_ = &policies_.back().second;
}

nn::TileDecision Controller::decide(std::size_t panel, std::size_t row_begin,
                                    std::size_t row_end) {
  if (policy_ == nullptr) throw std::logic_error("Controller: decide() before begin_gemm()");
  const std::size_t target = policy_->rung();
  LayerAdaptStats& ls = layer_stats(layer_);
  if (target != hw_rung_) {
    SwapEvent ev;
    ev.layer = layer_;
    ev.gemm = gemm_ordinal_;
    ev.panel = panel;
    ev.from = ladder_.rungs[hw_rung_].name;
    ev.to = ladder_.rungs[target].name;
    ev.cost = ladder_.swap[hw_rung_][target];
    ledger_.swaps.push_back(std::move(ev));
    ++ls.swaps;
    hw_rung_ = target;
  }
  // Charge the panel's MACs at the rung that actually computes it; a
  // later rejection does not refund this — recomputed panels are honestly
  // double-charged.
  ls.macs_by_rung[target] +=
      static_cast<std::uint64_t>(row_end - row_begin) * k_dim_ * n_;
  ++ls.panels;
  return {ladder_.rungs[target].backend.get(), false};
}

bool Controller::observe(std::size_t panel, const std::uint8_t* a, const std::uint8_t* b,
                         const std::int64_t* acc, std::size_t row_begin, std::size_t row_end,
                         std::size_t k_dim, std::size_t n) {
  if (policy_ == nullptr) throw std::logic_error("Controller: observe() before begin_gemm()");
  // Slack-normalized: the policy sees the panel's error as it will look at
  // the network output, so the SLO comparison is apples to apples.
  const double estimate =
      monitor_.measure(gemm_ordinal_, panel, a, b, acc, row_begin, row_end, k_dim, n, rq_) /
      slack_;
  LayerAdaptStats& ls = layer_stats(layer_);
  ++ls.windows;
  ls.sum_estimate += estimate;
  ls.worst_estimate = std::max(ls.worst_estimate, estimate);
  // The exact-shadow probes are real work: charge their dot products at
  // the exact rung's dynamic cost so monitoring is never free either.
  ls.monitor_macs += static_cast<std::uint64_t>(monitor_.config().probes_per_panel) * k_dim;
  if (ledger_.trajectory.size() < cfg_.max_trajectory) {
    ledger_.trajectory.push_back(estimate);
  } else {
    ++ledger_.trajectory_dropped;
  }
  const HysteresisPolicy::Action action = policy_->update(estimate);
  if (action == HysteresisPolicy::Action::kUp && estimate >= cfg_.policy.slo) {
    // Hard violation: this panel's output is not allowed to ship — redo it
    // at the escalated rung. (Margin crossings escalate without redo.)
    ++ls.recomputes;
    return false;
  }
  return true;
}

Report Controller::report(std::uint64_t inference_count) const {
  Report snapshot = ledger_;
  snapshot.finalize(inference_count);
  return snapshot;
}

}  // namespace axmult::adapt
