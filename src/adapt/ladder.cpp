#include "adapt/ladder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "dse/cache.hpp"
#include "dse/evaluate.hpp"
#include "dse/jsonio.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult::adapt {

namespace {

/// Rolls a netlist up under the CFGLUT-taxed models after marking every
/// LUT reconfigurable — the standing cost of a hot-swappable MAC unit.
nn::MacCost dynamic_cost_of(fabric::Netlist nl, const ReconfigModel& model) {
  nl.mark_all_luts_reconfigurable();
  timing::DelayModel dm;
  dm.cfglut_ns = model.cfglut_ns;
  power::PowerModel pm;
  pm.cfglut_cap = model.cfglut_cap;
  const auto area = nl.area();
  nn::MacCost cost;
  cost.modeled = true;
  cost.luts = area.luts;
  cost.carry4 = area.carry4;
  cost.critical_path_ns = timing::analyze(nl, dm).critical_path_ns;
  const auto pwr = power::estimate(nl, pm, dm);
  cost.energy_per_mac_au = pwr.energy_au;
  cost.edp_per_mac_au = pwr.edp_au;
  return cost;
}

/// A candidate rung still carrying its netlist (needed for the pairwise
/// swap-cost matrix; dropped once the ladder is assembled).
struct Candidate {
  Rung rung;
  fabric::Netlist netlist;
};

Candidate make_candidate(std::string name, nn::MacBackendPtr backend, fabric::Netlist nl,
                         const ReconfigModel& model) {
  Candidate c{{}, std::move(nl)};
  c.rung.name = std::move(name);
  c.rung.backend = std::move(backend);
  c.rung.static_cost = c.rung.backend->cost();
  c.rung.dynamic_cost = dynamic_cost_of(c.netlist, model);
  c.rung.table_mre = c.rung.backend->metrics().avg_relative_error;
  return c;
}

/// Orders candidates cheapest-first by dynamic EDP/MAC, prunes to strictly
/// decreasing error, guarantees an exact top rung, and assembles the swap
/// matrix.
Ladder assemble(std::vector<Candidate> candidates, const ReconfigModel& model) {
  std::stable_sort(candidates.begin(), candidates.end(), [](const Candidate& x,
                                                            const Candidate& y) {
    return x.rung.dynamic_cost.edp_per_mac_au < y.rung.dynamic_cost.edp_per_mac_au;
  });
  std::vector<Candidate> kept;
  for (Candidate& c : candidates) {
    if (!kept.empty() && c.rung.table_mre >= kept.back().rung.table_mre) continue;
    kept.push_back(std::move(c));
    if (kept.back().rung.backend->exact()) break;  // nothing can beat exact
  }
  if (kept.empty()) throw std::runtime_error("adapt::make_ladder: no usable rungs");
  if (!kept.back().rung.backend->exact()) {
    kept.push_back(make_candidate("exact", nn::shared_mac_backend("exact"),
                                  nn::mac_backend_netlist("exact"), model));
  }
  Ladder ladder;
  ladder.model = model;
  ladder.swap.resize(kept.size(), std::vector<SwapCost>(kept.size()));
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (i != j) ladder.swap[i][j] = swap_cost(kept[i].netlist, kept[j].netlist, model);
    }
  }
  for (Candidate& c : kept) ladder.rungs.push_back(std::move(c.rung));
  return ladder;
}

}  // namespace

std::string Ladder::describe() const {
  std::string out;
  for (const Rung& r : rungs) {
    if (!out.empty()) out += " -> ";
    out += r.name;
  }
  return out;
}

Ladder make_ladder(const std::vector<std::string>& names, const ReconfigModel& model) {
  std::vector<Candidate> candidates;
  for (const std::string& name : names) {
    candidates.push_back(make_candidate(name, nn::shared_mac_backend(name),
                                        nn::mac_backend_netlist(name), model));
  }
  return assemble(std::move(candidates), model);
}

std::vector<FrontBackend> backends_from_front(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open front file '" + path + "'");
  }
  std::vector<FrontBackend> usable;
  std::size_t skipped = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto key = dse::jsonio::find_string(line, "key");
    if (!key) {
      if (line.find("front_meta") != std::string::npos) continue;  // header line
      throw std::runtime_error("malformed front file '" + path + "' (line " +
                               std::to_string(line_no) + " has no \"key\")");
    }
    dse::Config config;
    try {
      config = dse::parse_key(*key);
    } catch (const std::exception& e) {
      throw std::runtime_error("malformed front file '" + path + "' (line " +
                               std::to_string(line_no) + ", key '" + *key + "': " + e.what() +
                               ")");
    }
    if (!dse::EvalCache::parse_objectives(line)) {
      throw std::runtime_error("malformed front file '" + path + "' (line " +
                               std::to_string(line_no) + " has no parseable objectives)");
    }
    if (config.signed_wrapper) {
      ++skipped;  // the NN data path is unsigned
      continue;
    }
    try {
      nn::MacBackendPtr backend = dse::make_backend(config);
      usable.push_back({*key, config, std::move(backend)});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "adapt: skipping front point '%s': %s\n", key->c_str(), e.what());
      ++skipped;
    }
  }
  if (usable.empty()) {
    throw std::runtime_error("front file '" + path + "' contains no usable unsigned configs (" +
                             std::to_string(skipped) + " point(s) skipped)");
  }
  return usable;
}

Ladder ladder_from_front(const std::string& path, std::size_t max_rungs,
                         const ReconfigModel& model) {
  std::vector<FrontBackend> points = backends_from_front(path);
  // Cheapest configs first so the cap keeps the low-cost end of the front
  // (the exact top rung is appended by assemble() regardless).
  std::stable_sort(points.begin(), points.end(), [](const FrontBackend& x,
                                                    const FrontBackend& y) {
    return x.backend->cost().edp_per_mac_au < y.backend->cost().edp_per_mac_au;
  });
  std::vector<Candidate> candidates;
  for (FrontBackend& p : points) {
    if (candidates.size() >= max_rungs) break;
    candidates.push_back(make_candidate(dse::display_name(p.config), std::move(p.backend),
                                        dse::make_config_netlist(p.config), model));
  }
  return assemble(std::move(candidates), model);
}

}  // namespace axmult::adapt
