#include "check/golden.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "check/backends.hpp"
#include "common/rng.hpp"
#include "dse/jsonio.hpp"
#include "dse/space.hpp"

namespace axmult::check {
namespace {

std::uint64_t authoritative_product(const Subject& s, fabric::Evaluator& scalar, std::uint64_t a,
                                    std::uint64_t b) {
  if (s.model) return s.model->multiply(a, b);
  return scalar.eval_word(a, s.a_bits, b, s.b_bits);
}

}  // namespace

std::vector<GoldenSpec> default_golden_set() {
  const std::string a4x4 = "dse:" + dse::config_key(dse::paper_approx4x4());
  return {
      // Table 2 of the paper: the approximate 4x4 module errs on exactly
      // six operand pairs. "errors" mode freezes those pairs and products.
      {"table2_a4x4.golden", a4x4, "errors", 0, 0},
      // The asymmetric 4x2 block is small enough for its full truth table.
      {"a4x2_full.golden", "elem:a4x2", "exhaustive", 0, 0},
      // Proposed 8x8 and 16x16 cores: seeded uniform samples.
      {"ca8.golden", "catalog:Ca_8", "sampled", 512, 0xca8},
      {"cc8.golden", "catalog:Cc_8", "sampled", 512, 0xcc8},
      {"ca16.golden", "catalog:Ca_16", "sampled", 256, 0xca16},
      {"cc16.golden", "catalog:Cc_16", "sampled", 256, 0xcc16},
  };
}

GoldenFile make_golden(const GoldenSpec& spec) {
  const Subject s = resolve_subject(spec.subject);
  fabric::Evaluator scalar(s.netlist);
  GoldenFile g;
  g.subject = spec.subject;
  g.mode = spec.mode;
  g.a_bits = s.a_bits;
  g.b_bits = s.b_bits;
  g.seed = spec.seed;
  const std::uint64_t am = (std::uint64_t{1} << s.a_bits) - 1;
  const std::uint64_t bm = (std::uint64_t{1} << s.b_bits) - 1;
  if (spec.mode == "exhaustive") {
    for (std::uint64_t a = 0; a <= am; ++a) {
      for (std::uint64_t b = 0; b <= bm; ++b) {
        g.rows.push_back({a, b, authoritative_product(s, scalar, a, b)});
      }
    }
  } else if (spec.mode == "errors") {
    for (std::uint64_t a = 0; a <= am; ++a) {
      for (std::uint64_t b = 0; b <= bm; ++b) {
        const std::uint64_t p = authoritative_product(s, scalar, a, b);
        if (p != a * b) g.rows.push_back({a, b, p});
      }
    }
  } else if (spec.mode == "sampled") {
    Xoshiro256 rng(derive_stream_seed(spec.seed, 0x601de2));
    for (std::size_t i = 0; i < spec.count; ++i) {
      const std::uint64_t a = rng() & am;
      const std::uint64_t b = rng() & bm;
      g.rows.push_back({a, b, authoritative_product(s, scalar, a, b)});
    }
  } else {
    throw std::invalid_argument("make_golden: unknown mode " + spec.mode);
  }
  return g;
}

void write_golden(const GoldenFile& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_golden: cannot open " + path);
  out << "{\"subject\": \"" << g.subject << "\", \"mode\": \"" << g.mode
      << "\", \"a_bits\": " << g.a_bits << ", \"b_bits\": " << g.b_bits << ", \"seed\": " << g.seed
      << ", \"count\": " << g.rows.size() << "}\n";
  for (const GoldenRow& r : g.rows) out << r.a << ' ' << r.b << ' ' << r.product << '\n';
}

GoldenFile read_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_golden: cannot open " + path);
  std::string header;
  if (!std::getline(in, header)) throw std::runtime_error("read_golden: empty file " + path);
  namespace js = dse::jsonio;
  const auto subject = js::find_string(header, "subject");
  const auto mode = js::find_string(header, "mode");
  const auto a_bits = js::find_number(header, "a_bits");
  const auto b_bits = js::find_number(header, "b_bits");
  const auto count = js::find_number(header, "count");
  if (!subject || !mode || !a_bits || !b_bits || !count) {
    throw std::runtime_error("read_golden: malformed header in " + path);
  }
  GoldenFile g;
  g.subject = *subject;
  g.mode = *mode;
  g.a_bits = static_cast<unsigned>(*a_bits);
  g.b_bits = static_cast<unsigned>(*b_bits);
  g.seed = static_cast<std::uint64_t>(js::find_number(header, "seed").value_or(0));
  GoldenRow r{};
  while (in >> r.a >> r.b >> r.product) g.rows.push_back(r);
  if (g.rows.size() != static_cast<std::size_t>(*count)) {
    throw std::runtime_error("read_golden: row count mismatch in " + path);
  }
  return g;
}

std::optional<std::string> replay_golden(const GoldenFile& g) {
  const Subject s = resolve_subject(g.subject);
  if (s.a_bits != g.a_bits || s.b_bits != g.b_bits) {
    return "golden " + g.subject + ": operand widths changed";
  }
  Oracle oracle(s);
  for (const GoldenRow& r : g.rows) {
    for (const BackendId id : oracle.backends()) {
      const std::uint64_t p = oracle.eval_one(id, r.a, r.b);
      if (p != r.product) {
        std::ostringstream os;
        os << "golden " << g.subject << ": backend " << backend_name(id) << " computes "
           << r.a << "*" << r.b << " = " << p << ", golden file says " << r.product;
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::size_t emit_golden_set(const std::string& dir) {
  std::filesystem::create_directories(dir);
  const auto set = default_golden_set();
  for (const GoldenSpec& spec : set) {
    write_golden(make_golden(spec), (std::filesystem::path(dir) / spec.file).string());
  }
  return set.size();
}

}  // namespace axmult::check
