#include "check/serve_diff.hpp"

#include <unistd.h>

#include <mutex>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "dse/cache.hpp"
#include "dse/space.hpp"
#include "nn/gemm.hpp"
#include "nn/mac.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace axmult::check {

namespace {

std::string diff_socket_path(const std::string& requested) {
  if (!requested.empty()) return requested;
  return "/tmp/axserve_diff." + std::to_string(::getpid()) + ".sock";
}

/// Operand panel drawn from one RNG stream, masked to the backend's data
/// width (narrow backends like approx4 index a sub-8-bit table).
std::vector<std::uint8_t> random_panel(std::uint64_t seed, std::uint64_t stream,
                                       std::size_t size, unsigned data_bits) {
  Xoshiro256 rng(derive_stream_seed(seed, stream));
  std::vector<std::uint8_t> panel(size);
  for (auto& v : panel) v = static_cast<std::uint8_t>(rng.below(1ull << data_bits));
  return panel;
}

}  // namespace

ServeDiffReport serve_diff(const ServeDiffOptions& opts_in) {
  ServeDiffOptions opts = opts_in;
  if (opts.keys.empty()) opts.keys = serve::default_key_pool();
  if (opts.backends.empty()) opts.backends = {"exact", "ca8", "cc8"};
  if (opts.clients == 0) opts.clients = 1;

  serve::ServerOptions server_opts;
  server_opts.socket_path = diff_socket_path(opts.socket_path);
  server_opts.workers = 2;
  server_opts.eval = opts.eval;
  serve::Server server(server_opts);
  server.start();

  ServeDiffReport report;
  try {
    // --- characterize: served objectives vs a direct dse::evaluate ---
    serve::Client client(server_opts.socket_path);
    for (const std::string& key : opts.keys) {
      ++report.characterize_checked;
      const dse::Config cfg = dse::parse_key(key);
      const dse::Objectives direct = dse::evaluate(cfg, opts.eval);
      const serve::Reply reply = client.characterize(key);
      if (!reply.ok || !reply.has_objectives) {
        report.failures.push_back("characterize " + key + ": " +
                                  (reply.error.empty() ? "reply without objectives"
                                                       : reply.error));
        continue;
      }
      // Field-exact: the cache-line dialect round-trips every double.
      const std::string want = dse::EvalCache::serialize_objectives(direct);
      const std::string got = dse::EvalCache::serialize_objectives(reply.objectives);
      if (want != got) {
        report.failures.push_back("characterize " + key + ": served != direct\n    direct: " +
                                  want + "\n    served: " + got);
      }
    }

    // --- infer: concurrent clients vs direct gemm_accumulate ---
    const std::size_t acc_size = static_cast<std::size_t>(opts.m) * opts.n;
    std::mutex report_mu;
    for (const std::string& backend_name : opts.backends) {
      const nn::MacBackendPtr backend = nn::shared_mac_backend(backend_name);
      const unsigned data_bits = backend->data_bits();
      // One shared rhs panel per backend so the batcher can merge clients.
      const std::vector<std::uint8_t> b = random_panel(
          opts.seed, 0xB, static_cast<std::size_t>(opts.k) * opts.n, data_bits);
      std::vector<std::thread> threads;
      threads.reserve(opts.clients);
      for (unsigned c = 0; c < opts.clients; ++c) {
        threads.emplace_back([&, c] {
          std::string failure;
          try {
            const std::vector<std::uint8_t> a = random_panel(
                opts.seed, c + 1, static_cast<std::size_t>(opts.m) * opts.k, data_bits);
            std::vector<std::int64_t> want(acc_size, 0);
            nn::gemm_accumulate(*backend, false, a.data(), b.data(), want.data(), opts.m,
                                opts.k, opts.n, 1);
            serve::Client worker(server_opts.socket_path);
            const serve::Reply reply =
                worker.infer(backend_name, false, opts.m, opts.k, opts.n, a, b);
            if (!reply.ok) {
              failure = "infer " + backend_name + " client " + std::to_string(c) + ": " +
                        (reply.error.empty() ? "not ok" : reply.error);
            } else if (reply.acc != want) {
              std::ostringstream os;
              os << "infer " << backend_name << " client " << c
                 << ": accumulators differ from direct gemm_accumulate";
              for (std::size_t i = 0; i < acc_size; ++i) {
                if (reply.acc.size() <= i || reply.acc[i] != want[i]) {
                  os << " (first at [" << i << "]: direct " << want[i] << " served "
                     << (i < reply.acc.size() ? std::to_string(reply.acc[i]) : "<missing>")
                     << ")";
                  break;
                }
              }
              failure = os.str();
            }
          } catch (const std::exception& e) {
            failure = "infer " + backend_name + " client " + std::to_string(c) + ": " +
                      e.what();
          }
          const std::lock_guard<std::mutex> lock(report_mu);
          ++report.infer_requests_checked;
          if (!failure.empty()) report.failures.push_back(failure);
        });
      }
      for (std::thread& t : threads) t.join();
    }
  } catch (...) {
    server.stop();
    throw;
  }
  server.stop();
  return report;
}

}  // namespace axmult::check
