#include "check/generate.hpp"

#include <algorithm>

namespace axmult::check {
namespace {

std::uint64_t mask_of(unsigned bits) { return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1; }

std::uint64_t corner_value(unsigned bits, Xoshiro256& rng) {
  const std::uint64_t mask = mask_of(bits);
  const std::uint64_t k = rng.below(bits);
  switch (rng.below(7)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return mask;                               // all ones
    case 3: return mask - 1;
    case 4: return std::uint64_t{1} << k;              // walking one
    case 5: return ((std::uint64_t{1} << k) - 1);      // low-run of ones
    default: return mask ^ (std::uint64_t{1} << k);    // walking zero
  }
}

std::uint64_t gaussian_value(unsigned bits, Xoshiro256& rng) {
  const auto mask = static_cast<double>(mask_of(bits));
  const double v = 0.7 * mask + 0.22 * mask * gaussian01(rng);
  if (v <= 0.0) return 0;
  if (v >= mask) return mask_of(bits);
  return static_cast<std::uint64_t>(v);
}

std::uint64_t flip_bits(std::uint64_t v, unsigned bits, Xoshiro256& rng, unsigned flips) {
  for (unsigned f = 0; f < flips; ++f) v ^= std::uint64_t{1} << rng.below(bits);
  return v & mask_of(bits);
}

}  // namespace

const char* dist_name(Dist d) noexcept {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kCorner: return "corner";
    case Dist::kGaussian: return "gaussian";
    case Dist::kToggleAdversarial: return "toggle-adversarial";
  }
  return "?";
}

void fill_operands(Dist d, unsigned a_bits, unsigned b_bits, Xoshiro256& rng, std::uint64_t* a,
                   std::uint64_t* b, std::size_t n) {
  const std::uint64_t am = mask_of(a_bits);
  const std::uint64_t bm = mask_of(b_bits);
  switch (d) {
    case Dist::kUniform:
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng() & am;
        b[i] = rng() & bm;
      }
      break;
    case Dist::kCorner:
      // Mix pure corners with corner x uniform cross terms so the carry
      // boundaries meet ordinary operands too.
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = corner_value(a_bits, rng);
        b[i] = rng.below(2) != 0 ? corner_value(b_bits, rng) : (rng() & bm);
        if (rng.below(4) == 0) {
          std::swap(a[i], b[i]);
          a[i] &= am;
          b[i] &= bm;
        }
      }
      break;
    case Dist::kGaussian:
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = gaussian_value(a_bits, rng);
        b[i] = gaussian_value(b_bits, rng);
      }
      break;
    case Dist::kToggleAdversarial: {
      // Lane-to-lane random walk flipping 1-2 bits per operand: adjacent
      // packed lanes then differ in few inputs, driving long XOR/carry
      // cones through dense 0<->1 traffic.
      std::uint64_t va = rng() & am;
      std::uint64_t vb = rng() & bm;
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = va;
        b[i] = vb;
        va = flip_bits(va, a_bits, rng, 1 + static_cast<unsigned>(rng.below(2)));
        vb = flip_bits(vb, b_bits, rng, 1 + static_cast<unsigned>(rng.below(2)));
      }
      break;
    }
  }
}

GuidedGenerator::GuidedGenerator(unsigned a_bits, unsigned b_bits, std::uint64_t seed)
    : a_bits_(a_bits), b_bits_(b_bits), rng_(seed) {}

void GuidedGenerator::next_batch(std::uint64_t* a, std::uint64_t* b, std::size_t n) {
  last_dist_ = kAllDists[round_ % kAllDists.size()];
  ++round_;
  fill_operands(last_dist_, a_bits_, b_bits_, rng_, a, b, n);
  if (pool_.empty()) return;
  // Second half: neighbourhood walks around pairs that covered new nets.
  for (std::size_t i = n / 2; i < n; ++i) {
    const auto& [pa, pb] = pool_[rng_.below(pool_.size())];
    a[i] = flip_bits(pa, a_bits_, rng_, 1 + static_cast<unsigned>(rng_.below(2)));
    b[i] = flip_bits(pb, b_bits_, rng_, 1 + static_cast<unsigned>(rng_.below(2)));
  }
}

void GuidedGenerator::reward(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  constexpr std::size_t kKeep = 8;
  constexpr std::size_t kPoolCap = 64;
  for (std::size_t i = 0; i < std::min(n, kKeep); ++i) pool_.emplace_back(a[i], b[i]);
  if (pool_.size() > kPoolCap) pool_.erase(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(pool_.size() - kPoolCap));
}

}  // namespace axmult::check
