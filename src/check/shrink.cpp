#include "check/shrink.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "dse/jsonio.hpp"

namespace axmult::check {

std::pair<std::uint64_t, std::uint64_t> shrink_inputs(std::uint64_t a, std::uint64_t b,
                                                      const FailPredicate& fails,
                                                      unsigned* steps) {
  unsigned accepted = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    if (a != 0 && fails(0, b)) {
      a = 0;
      changed = true;
      ++accepted;
    }
    if (b != 0 && fails(a, 0)) {
      b = 0;
      changed = true;
      ++accepted;
    }
    for (unsigned bit = 64; bit-- > 0;) {
      const std::uint64_t m = std::uint64_t{1} << bit;
      if ((a & m) != 0 && fails(a & ~m, b)) {
        a &= ~m;
        changed = true;
        ++accepted;
      }
      if ((b & m) != 0 && fails(a, b & ~m)) {
        b &= ~m;
        changed = true;
        ++accepted;
      }
    }
  }
  if (steps != nullptr) *steps = accepted;
  return {a, b};
}

std::string first_divergent_net(const fabric::Netlist& ref, const fabric::Netlist& mut,
                                unsigned a_bits, unsigned b_bits, std::uint64_t a,
                                std::uint64_t b) {
  fabric::Evaluator ref_ev(ref);
  fabric::Evaluator mut_ev(mut);
  (void)ref_ev.eval_word(a, a_bits, b, b_bits);
  (void)mut_ev.eval_word(a, a_bits, b, b_bits);
  const auto& ref_values = ref_ev.net_values();
  const auto& mut_values = mut_ev.net_values();
  for (const std::uint32_t ci : mut.topo_order()) {
    for (const fabric::NetId net : mut.cells()[ci].out) {
      if (net == fabric::kNoNet) continue;
      if (ref_values[net] != mut_values[net]) return mut.net_name(net);
    }
  }
  return "";
}

unsigned cone_cell_count(const fabric::Netlist& nl, fabric::NetId net) {
  if (net == fabric::kNoNet || net >= nl.net_count()) return 0;
  // Driver map: which cell produces each net.
  std::vector<std::uint32_t> driver(nl.net_count(), fabric::kNoNet);
  for (std::uint32_t ci = 0; ci < nl.cells().size(); ++ci) {
    for (const fabric::NetId out : nl.cells()[ci].out) {
      if (out != fabric::kNoNet) driver[out] = ci;
    }
  }
  std::vector<std::uint8_t> seen(nl.cells().size(), 0);
  std::vector<fabric::NetId> stack{net};
  unsigned count = 0;
  while (!stack.empty()) {
    const fabric::NetId n = stack.back();
    stack.pop_back();
    if (n == fabric::kNoNet || n >= nl.net_count()) continue;
    const std::uint32_t ci = driver[n];
    if (ci == fabric::kNoNet || seen[ci] != 0) continue;
    seen[ci] = 1;
    ++count;
    for (const fabric::NetId in : nl.cells()[ci].in) {
      if (in != fabric::kNoNet && in != fabric::kNetGnd && in != fabric::kNetVcc) {
        stack.push_back(in);
      }
    }
  }
  return count;
}

fabric::NetId find_net(const fabric::Netlist& nl, const std::string& name) {
  for (fabric::NetId n = 0; n < nl.net_count(); ++n) {
    if (nl.net_name(n) == name) return n;
  }
  return fabric::kNoNet;
}

std::string repro_json(const Counterexample& cx) {
  std::ostringstream os;
  os << "{\"subject\": \"" << cx.subject << "\", \"kind\": \"" << cx.kind << "\", \"lhs\": \""
     << cx.lhs << "\", \"rhs\": \"" << cx.rhs << "\", \"a\": " << cx.a << ", \"b\": " << cx.b
     << ", \"lhs_value\": " << cx.lhs_value << ", \"rhs_value\": " << cx.rhs_value
     << ", \"net\": \"" << cx.net << "\", \"cone_cells\": " << cx.cone_cells
     << ", \"shrink_steps\": " << cx.shrink_steps << "}\n";
  return os.str();
}

std::string write_repro(const Counterexample& cx, const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::string slug;
  for (const char c : cx.subject) {
    slug += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_') ? c : '_';
  }
  std::ostringstream name;
  name << "repro-" << slug << "-a" << cx.a << "-b" << cx.b << ".json";
  const std::string path = (std::filesystem::path(dir) / name.str()).string();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_repro: cannot open " + path);
  out << repro_json(cx);
  return path;
}

Counterexample read_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_repro: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  namespace js = dse::jsonio;
  const auto subject = js::find_string(text, "subject");
  const auto a = js::find_number(text, "a");
  const auto b = js::find_number(text, "b");
  if (!subject || !a || !b) {
    throw std::runtime_error("read_repro: " + path + " is not a repro file");
  }
  Counterexample cx;
  cx.subject = *subject;
  cx.kind = js::find_string(text, "kind").value_or("");
  cx.lhs = js::find_string(text, "lhs").value_or("");
  cx.rhs = js::find_string(text, "rhs").value_or("");
  cx.a = static_cast<std::uint64_t>(*a);
  cx.b = static_cast<std::uint64_t>(*b);
  cx.lhs_value = static_cast<std::uint64_t>(js::find_number(text, "lhs_value").value_or(0));
  cx.rhs_value = static_cast<std::uint64_t>(js::find_number(text, "rhs_value").value_or(0));
  cx.net = js::find_string(text, "net").value_or("");
  cx.cone_cells = static_cast<unsigned>(js::find_number(text, "cone_cells").value_or(0));
  cx.shrink_steps = static_cast<unsigned>(js::find_number(text, "shrink_steps").value_or(0));
  return cx;
}

}  // namespace axmult::check
