#include "check/backends.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "nn/gemm.hpp"

namespace axmult::check {
namespace {

/// eval_mul_batch caps n at the evaluator's lane count; feed it in
/// kLanes-sized slices (ragged tails are fine).
template <unsigned W>
void run_wide(fabric::WideEvaluator<W>& ev, const std::uint64_t* a, const std::uint64_t* b,
              std::uint64_t* p, std::size_t n, unsigned a_bits, unsigned b_bits) {
  for (std::size_t at = 0; at < n; at += fabric::WideEvaluator<W>::kLanes) {
    const std::size_t len = std::min<std::size_t>(fabric::WideEvaluator<W>::kLanes, n - at);
    ev.eval_mul_batch(a + at, b + at, p + at, len, a_bits, b_bits);
  }
}

}  // namespace

const char* backend_name(BackendId id) noexcept {
  switch (id) {
    case BackendId::kModel: return "model";
    case BackendId::kScalar: return "scalar";
    case BackendId::kWide1: return "wide1";
    case BackendId::kWide2: return "wide2";
    case BackendId::kWide4Opt: return "wide4opt";
    case BackendId::kWide8Opt: return "wide8opt";
    case BackendId::kTable: return "table";
  }
  return "?";
}

Oracle::Oracle(const Subject& s) : subject_(&s) {
  if (s.netlist.is_sequential()) {
    throw std::invalid_argument("check::Oracle: combinational subjects only "
                                "(use check_sequential)");
  }
  if (s.model) ids_.push_back(BackendId::kModel);
  scalar_ = std::make_unique<fabric::Evaluator>(s.netlist);
  ids_.push_back(BackendId::kScalar);
  wide1_ = std::make_unique<fabric::WideEvaluator<1>>(s.netlist, fabric::EvalOptions{.optimize = false});
  ids_.push_back(BackendId::kWide1);
  wide2_ = std::make_unique<fabric::WideEvaluator<2>>(s.netlist, fabric::EvalOptions{.optimize = false});
  ids_.push_back(BackendId::kWide2);
  wide4_ = std::make_unique<fabric::WideEvaluator<4>>(s.netlist);
  ids_.push_back(BackendId::kWide4Opt);
  wide8_ = std::make_unique<fabric::WideEvaluator<8>>(s.netlist);
  ids_.push_back(BackendId::kWide8Opt);
  if (s.model && s.a_bits == s.b_bits && s.a_bits <= 8) {
    table_ = std::make_shared<nn::MacBackend>(s.name, s.model);
    ids_.push_back(BackendId::kTable);
  }
}

std::optional<Mismatch> Oracle::run(const std::uint64_t* a, const std::uint64_t* b,
                                    std::size_t n) {
  values_.assign(ids_.size(), {});
  for (std::size_t bi = 0; bi < ids_.size(); ++bi) {
    auto& out = values_[bi];
    out.resize(n);
    switch (ids_[bi]) {
      case BackendId::kModel:
        for (std::size_t i = 0; i < n; ++i) out[i] = subject_->model->multiply(a[i], b[i]);
        break;
      case BackendId::kScalar:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = scalar_->eval_word(a[i], subject_->a_bits, b[i], subject_->b_bits);
        }
        break;
      case BackendId::kWide1:
        // Explicit 64-lane slices so the coverage tracker sees every
        // chunk's net values, not just the last one.
        for (std::size_t at = 0; at < n; at += 64) {
          const std::size_t len = std::min<std::size_t>(64, n - at);
          wide1_->eval_mul_batch(a + at, b + at, out.data() + at, len, subject_->a_bits,
                                 subject_->b_bits);
          if (coverage_ != nullptr) coverage_->observe(*wide1_, len);
        }
        break;
      case BackendId::kWide2:
        run_wide(*wide2_, a, b, out.data(), n, subject_->a_bits, subject_->b_bits);
        break;
      case BackendId::kWide4Opt:
        run_wide(*wide4_, a, b, out.data(), n, subject_->a_bits, subject_->b_bits);
        break;
      case BackendId::kWide8Opt:
        run_wide(*wide8_, a, b, out.data(), n, subject_->a_bits, subject_->b_bits);
        break;
      case BackendId::kTable:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = table_->mul(static_cast<unsigned>(a[i]), static_cast<unsigned>(b[i]));
        }
        break;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    bool all_equal = true;
    for (std::size_t bi = 1; bi < ids_.size(); ++bi) {
      if (values_[bi][i] != values_[0][i]) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) continue;
    // Name the disagreement as majority-vs-outlier when a majority exists.
    std::size_t best_backend = 0;
    std::size_t best_votes = 0;
    for (std::size_t bi = 0; bi < ids_.size(); ++bi) {
      std::size_t votes = 0;
      for (std::size_t bj = 0; bj < ids_.size(); ++bj) {
        votes += values_[bj][i] == values_[bi][i] ? 1 : 0;
      }
      if (votes > best_votes) {
        best_votes = votes;
        best_backend = bi;
      }
    }
    std::size_t outlier = 0;
    for (std::size_t bi = 0; bi < ids_.size(); ++bi) {
      if (values_[bi][i] != values_[best_backend][i]) {
        outlier = bi;
        break;
      }
    }
    Mismatch m;
    m.lhs = ids_[best_backend];
    m.rhs = ids_[outlier];
    m.a = a[i];
    m.b = b[i];
    m.lhs_value = values_[best_backend][i];
    m.rhs_value = values_[outlier][i];
    return m;
  }
  return std::nullopt;
}

std::uint64_t Oracle::eval_one(BackendId id, std::uint64_t a, std::uint64_t b) {
  std::uint64_t p = 0;
  switch (id) {
    case BackendId::kModel: return subject_->model->multiply(a, b);
    case BackendId::kScalar: return scalar_->eval_word(a, subject_->a_bits, b, subject_->b_bits);
    case BackendId::kWide1:
      wide1_->eval_mul_batch(&a, &b, &p, 1, subject_->a_bits, subject_->b_bits);
      return p;
    case BackendId::kWide2:
      wide2_->eval_mul_batch(&a, &b, &p, 1, subject_->a_bits, subject_->b_bits);
      return p;
    case BackendId::kWide4Opt:
      wide4_->eval_mul_batch(&a, &b, &p, 1, subject_->a_bits, subject_->b_bits);
      return p;
    case BackendId::kWide8Opt:
      wide8_->eval_mul_batch(&a, &b, &p, 1, subject_->a_bits, subject_->b_bits);
      return p;
    case BackendId::kTable: return table_->mul(static_cast<unsigned>(a), static_cast<unsigned>(b));
  }
  return p;
}

std::string Oracle::divergent_net(std::uint64_t a, std::uint64_t b) {
  // Scalar and wide1 both evaluate the raw netlist, so their per-net
  // values are directly comparable in topological order.
  (void)scalar_->eval_word(a, subject_->a_bits, b, subject_->b_bits);
  std::uint64_t pw = 0;
  wide1_->eval_mul_batch(&a, &b, &pw, 1, subject_->a_bits, subject_->b_bits);
  const auto& scalar_values = scalar_->net_values();
  const auto& wide_values = wide1_->net_values();
  const auto& nl = subject_->netlist;
  for (const std::uint32_t ci : nl.topo_order()) {
    for (const fabric::NetId net : nl.cells()[ci].out) {
      if (net == fabric::kNoNet) continue;
      const auto scalar_bit = static_cast<std::uint64_t>(scalar_values[net] & 1u);
      if (scalar_bit != (wide_values[net] & 1u)) return nl.net_name(net);
    }
  }
  return "";
}

std::optional<std::string> check_sequential(const fabric::Netlist& nl, unsigned a_bits,
                                            unsigned b_bits, const mult::Multiplier* model,
                                            unsigned latency, std::uint64_t seed, unsigned cycles,
                                            unsigned replay_lanes, ToggleCoverage* coverage) {
  constexpr unsigned kLanes = fabric::BitParallelSeqEvaluator::kLanes;
  replay_lanes = std::min(replay_lanes, kLanes);

  // Per-lane operand streams from disjoint seed-derived RNG streams.
  std::vector<std::vector<std::uint64_t>> a_ops(kLanes), b_ops(kLanes);
  for (unsigned l = 0; l < kLanes; ++l) {
    Xoshiro256 rng(derive_stream_seed(seed, l));
    a_ops[l].resize(cycles);
    b_ops[l].resize(cycles);
    for (unsigned t = 0; t < cycles; ++t) {
      a_ops[l][t] = rng() & ((std::uint64_t{1} << a_bits) - 1);
      b_ops[l][t] = rng() & ((std::uint64_t{1} << b_bits) - 1);
    }
  }

  fabric::BitParallelSeqEvaluator packed(nl);
  const std::size_t n_outputs = nl.outputs().size();
  std::vector<std::uint64_t> input_words(nl.inputs().size());
  std::vector<std::vector<std::uint64_t>> products(kLanes,
                                                   std::vector<std::uint64_t>(cycles, 0));
  for (unsigned t = 0; t < cycles; ++t) {
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      std::uint64_t w = 0;
      for (unsigned l = 0; l < kLanes; ++l) {
        const std::uint64_t op = i < a_bits ? a_ops[l][t] : b_ops[l][t];
        const unsigned bit = i < a_bits ? static_cast<unsigned>(i)
                                        : static_cast<unsigned>(i) - a_bits;
        w |= ((op >> bit) & 1u) << l;
      }
      input_words[i] = w;
    }
    const auto& out = packed.step(input_words);
    for (unsigned l = 0; l < kLanes; ++l) {
      std::uint64_t p = 0;
      for (std::size_t j = 0; j < n_outputs; ++j) p |= ((out[j] >> l) & 1u) << j;
      products[l][t] = p;
    }
  }

  // Scalar cycle-accurate replays of the leading lanes.
  for (unsigned l = 0; l < replay_lanes; ++l) {
    fabric::SeqEvaluator replay(nl);
    for (unsigned t = 0; t < cycles; ++t) {
      const std::uint64_t p = replay.step_word(a_ops[l][t], a_bits, b_ops[l][t], b_bits);
      if (coverage != nullptr) coverage->observe_scalar(replay.net_values());
      if (p != products[l][t]) {
        std::ostringstream os;
        os << "sequential: scalar SeqEvaluator and packed lanes disagree at lane " << l
           << " cycle " << t << " (a=" << a_ops[l][t] << " b=" << b_ops[l][t] << "): " << p
           << " vs " << products[l][t];
        return os.str();
      }
    }
  }

  // Latency-shifted behavioral model on every lane.
  if (model != nullptr) {
    for (unsigned l = 0; l < kLanes; ++l) {
      for (unsigned t = latency; t < cycles; ++t) {
        const std::uint64_t want = model->multiply(a_ops[l][t - latency], b_ops[l][t - latency]);
        if (products[l][t] != want) {
          std::ostringstream os;
          os << "sequential: lane " << l << " cycle " << t << " product " << products[l][t]
             << " != model(" << a_ops[l][t - latency] << ", " << b_ops[l][t - latency]
             << ") = " << want << " at latency " << latency;
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_gemm(const Subject& s, std::uint64_t seed) {
  if (!s.model || s.a_bits != s.b_bits || s.a_bits > 8) return std::nullopt;
  const nn::MacBackend backend(s.name, s.model);
  const unsigned data_mask = (1u << backend.data_bits()) - 1;

  // Ragged shapes so the blocked kernels' edge tiles are exercised too.
  struct Shape {
    std::size_t m, k, n;
  };
  for (const Shape shape : {Shape{9, 33, 17}, Shape{4, 64, 32}}) {
    Xoshiro256 rng(derive_stream_seed(seed, shape.m));
    std::vector<std::uint8_t> a(shape.m * shape.k);
    std::vector<std::uint8_t> b(shape.k * shape.n);
    for (auto& v : a) v = static_cast<std::uint8_t>(rng() & data_mask);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng() & data_mask);
    for (const bool swap : {false, true}) {
      std::vector<std::int64_t> blocked(shape.m * shape.n, 0);
      std::vector<std::int64_t> naive(shape.m * shape.n, 0);
      nn::gemm_accumulate(backend, swap, a.data(), b.data(), blocked.data(), shape.m, shape.k,
                          shape.n, 1);
      nn::gemm_accumulate_naive(backend, swap, a.data(), b.data(), naive.data(), shape.m,
                                shape.k, shape.n, 1);
      if (blocked != naive) {
        std::ostringstream os;
        os << "gemm: blocked kernel (" << nn::gemm_kernel_name() << ") != naive table walk at "
           << shape.m << "x" << shape.k << "x" << shape.n << (swap ? " swapped" : "");
        return os.str();
      }
      if (s.exact && !swap) {
        std::vector<std::int64_t> reference(shape.m * shape.n, 0);
        nn::gemm_reference(a.data(), b.data(), reference.data(), shape.m, shape.k, shape.n);
        if (blocked != reference) {
          std::ostringstream os;
          os << "gemm: exact subject disagrees with int64 reference at " << shape.m << "x"
             << shape.k << "x" << shape.n;
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace axmult::check
