// Shrinking layer of the differential harness: reduces a failing operand
// pair to a (locally) minimal one, localizes the divergence to a net, and
// serializes the result as a standalone repro file.
//
// The shrinker is property-generic: it only needs a predicate "does (a, b)
// still fail", so the same loop minimizes backend mismatches, claim
// violations and LUT-INIT-flip divergences. Minimality here is the greedy
// fixed point of bit clearing — every remaining set bit is necessary for
// the failure — which in practice pins the failure to the exact partial
// products involved.
//
// Repro files are flat JSON in the repo's hand-written dialect
// (dse::jsonio reads them back): subject key, operands, both observed
// values, the first divergent net and the size of its input cone. They are
// standalone — `axcheck replay <file>` rebuilds the subject from the key
// and re-executes the comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fabric/netlist.hpp"

namespace axmult::check {

/// A shrunk failure: two computation paths disagreeing on one operand pair.
struct Counterexample {
  std::string subject;     ///< subject key (subject.hpp grammar)
  std::string kind;        ///< "backend-mismatch", "claim", "flip", ...
  std::string lhs;         ///< name of the majority/reference side
  std::string rhs;         ///< name of the disagreeing side
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t lhs_value = 0;
  std::uint64_t rhs_value = 0;
  std::string net;          ///< first divergent net, "" when not localized
  unsigned cone_cells = 0;  ///< cells feeding `net` (minimal implicated sub-netlist)
  unsigned shrink_steps = 0;  ///< accepted shrink moves
};

/// "Does the failure reproduce on (a, b)?" — must be deterministic.
using FailPredicate = std::function<bool(std::uint64_t a, std::uint64_t b)>;

/// Greedily minimizes a failing pair: first tries zeroing each operand
/// whole, then clears set bits high-to-low until no single clearing still
/// fails. Returns the reduced pair; `fails(a, b)` must hold on entry and
/// holds on the result. Writes the number of accepted moves to *steps when
/// non-null.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> shrink_inputs(std::uint64_t a,
                                                                    std::uint64_t b,
                                                                    const FailPredicate& fails,
                                                                    unsigned* steps = nullptr);

/// First net, in `mut`'s topological order, whose scalar evaluation on
/// (a, b) differs between `ref` and `mut`. Both netlists must share cell
/// and net indices (e.g. transforms::with_lut_init_flip output vs its
/// input). Returns "" when every net agrees.
[[nodiscard]] std::string first_divergent_net(const fabric::Netlist& ref,
                                              const fabric::Netlist& mut, unsigned a_bits,
                                              unsigned b_bits, std::uint64_t a, std::uint64_t b);

/// Number of cells in the transitive fan-in cone of `net` (its driver
/// included) — the minimal sub-netlist a repro implicates.
[[nodiscard]] unsigned cone_cell_count(const fabric::Netlist& nl, fabric::NetId net);

/// Resolves a net by name; kNoNet when absent.
[[nodiscard]] fabric::NetId find_net(const fabric::Netlist& nl, const std::string& name);

/// Serializes `cx` to one flat JSON object. write_repro places it under
/// `dir` (created if needed) with a deterministic name derived from the
/// subject and operands, and returns the full path.
[[nodiscard]] std::string repro_json(const Counterexample& cx);
std::string write_repro(const Counterexample& cx, const std::string& dir);

/// Parses a repro file produced by write_repro (throws std::runtime_error
/// on unreadable/malformed input).
[[nodiscard]] Counterexample read_repro(const std::string& path);

}  // namespace axmult::check
