// Analytic error engine as a conformance oracle.
//
// The compositional engine (error/analytic.hpp) claims *exact* metrics.
// This header backs the claim with two instruments:
//
//   * analytic_differential: reconstructs a subject's AnalyticSpec from
//     its key and compares every metric field — including the
//     floating-point folds and the full |error| PMF — against an
//     exhaustive netlist sweep. At <= 8x8 the agreement must be
//     bit-for-bit; any mismatch is reported per field. The harness runs
//     this on every analytically representable subject it fuzzes, and
//     tests/analytic_test.cpp runs it over the whole catalog.
//
//   * an analytic-metrics golden: frozen exact 16-bit metrics
//     (tests/golden/analytic_metrics16.golden) replayed in tier-1, so a
//     regression in the factor/bipartite strategies — whose reference
//     sweep would take minutes — still fails fast.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "error/analytic.hpp"

namespace axmult::check {

/// AnalyticSpec of a catalog design by name (paper_designs at 4/8/16 plus
/// evo_family_8x8). Nullopt with a reason for designs that have no pure
/// compositional description (pipelined / error-corrected extensions).
[[nodiscard]] std::optional<error::AnalyticSpec> catalog_analytic_spec(const std::string& name,
                                                                       std::string* why = nullptr);

/// AnalyticSpec of a subject key (subject.hpp grammar). A "+flip" suffix
/// is stripped: the spec always describes the unperturbed design, which
/// is what the flip subject keeps as its reference netlist.
[[nodiscard]] std::optional<error::AnalyticSpec> subject_analytic_spec(const std::string& key,
                                                                       std::string* why = nullptr);

/// Outcome of one analytic-vs-sweep differential.
struct AnalyticDifferential {
  /// False when the subject is outside the engine's envelope (reason says
  /// why) — not a failure, the harness simply skips it.
  bool supported = false;
  std::string reason;
  /// Field-level disagreements between the analytic metrics and the
  /// exhaustive reference sweep; empty means exact agreement.
  std::vector<std::string> failures;
};

/// Runs the analytic engine against an exhaustive sweep of the subject's
/// reference netlist (the pre-flip netlist for "+flip" subjects) and
/// demands bit-identical metrics and PMF. Subjects wider than 16 total
/// operand bits are reported unsupported (the reference sweep itself
/// would be the bottleneck).
[[nodiscard]] AnalyticDifferential analytic_differential(const std::string& key);

/// Checked-in analytic-metrics golden -----------------------------------

inline constexpr const char* kAnalyticMetricsGoldenFile = "analytic_metrics16.golden";

/// Subjects frozen in the metrics golden: exact 16-bit numbers from each
/// non-cross strategy (factor on the catalog cores, plus a mixed-summation
/// dse config).
[[nodiscard]] std::vector<std::string> analytic_golden_subjects();

/// Recomputes the golden subjects and writes the JSON-lines file.
void write_analytic_metrics_golden(const std::string& path);

/// Recomputes every subject of the file and compares: integer fields must
/// match exactly, floating-point fields within 1e-12 relative (long-double
/// folds may differ across ABIs). Returns the first failure description,
/// or nullopt when the file replays clean.
[[nodiscard]] std::optional<std::string> replay_analytic_metrics_golden(const std::string& path);

}  // namespace axmult::check
