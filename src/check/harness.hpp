// Top of the differential harness: subject selection, the fuzz loop, and
// the report the CLI/tests consume.
//
// One fuzz run checks a deterministic subject list — the catalog designs
// at the chosen width, the elementary 4x2 block, and `iters` configs
// sampled from a dse::SpaceSpec preset — each through `batches` operand
// batches from the guided generator. Per batch and subject the oracle
// cross-checks every backend, the documented error claim is evaluated
// against the exact product, "+flip" subjects are diffed against their
// pre-flip reference, and one-off invariants run once per subject:
// OptimizeStats conservation (cells_before == cells_after + folded + cse +
// dead), the fault-free stuck-at baseline (injecting a fault at the value
// the net already takes must not change the product), and the product
// table's operand-swap identity. Failures are shrunk (shrink.hpp) before
// they are reported.
//
// Determinism: the subject list is built up front on the calling thread;
// subjects are then sharded with common::parallel_chunks into indexed
// result slots, with every subject's RNG streams derived from (seed,
// subject index) via derive_stream_seed. Reports are therefore
// bit-identical for any --threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/shrink.hpp"

namespace axmult::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  unsigned iters = 12;          ///< dse configs sampled from `space`
  unsigned batches = 6;         ///< operand batches per subject
  std::size_t batch_size = 192; ///< pairs per batch
  unsigned width = 8;           ///< catalog width (4/8/16)
  std::string space = "smoke8"; ///< dse::make_space preset
  unsigned threads = 0;         ///< 0 = auto (common::thread_count)
  bool include_catalog = true;
  bool include_elem = true;
  /// Analytic-engine differential: exact compositional metrics vs an
  /// exhaustive netlist sweep, demanded bit-identical (<= 16 operand bits).
  bool analytic = true;
  bool sequential = true;       ///< pipelined/MAC cycle-accurate checks
  bool gemm = true;             ///< blocked table-GEMM differential
  std::string repro_dir;        ///< write shrunk repro files here ("" = off)
};

struct SubjectReport {
  std::string key;
  std::size_t pairs = 0;          ///< operand pairs through every backend
  std::size_t backend_count = 0;
  std::size_t nets = 0;           ///< toggle-eligible nets
  std::size_t covered = 0;
  double coverage = 0.0;
  std::vector<Counterexample> failures;
  std::string coverage_json;
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::vector<SubjectReport> subjects;  ///< subject-list order, thread-independent
  std::vector<std::string> sequential_failures;
  std::vector<std::string> gemm_failures;
  std::size_t total_pairs = 0;

  [[nodiscard]] std::size_t failure_count() const;
  /// Line-oriented JSON: one summary line, then one line per subject with
  /// its shrunk failures inline. Bit-identical for any thread count.
  [[nodiscard]] std::string to_json() const;
};

/// Deterministic subject list for the given options (catalog + elementary
/// + sampled dse configs, duplicates removed).
[[nodiscard]] std::vector<std::string> fuzz_subject_keys(const FuzzOptions& opts);

/// Fuzzes one subject: `batches` guided batches through the oracle plus
/// the per-subject invariants. `stream_seed` isolates its randomness.
[[nodiscard]] SubjectReport check_subject(const std::string& key, const FuzzOptions& opts,
                                          std::uint64_t stream_seed);

/// The full run. Writes repro files for every shrunk failure when
/// opts.repro_dir is set.
[[nodiscard]] FuzzReport fuzz(const FuzzOptions& opts);

}  // namespace axmult::check
