// Differential conformance of the axserve daemon: a served answer must be
// bit-identical to the direct library call it stands in for.
//
// serve_diff() boots a private in-process Server on a throwaway socket and
// checks both request families end to end — through the real wire
// protocol, queues, coalescing and batching paths, not a shortcut:
//   * characterize: for each dse key, dse::evaluate() run directly is
//     compared field-exact (via the cache-line serialization, which
//     round-trips doubles exactly) against the daemon's reply;
//   * infer: several concurrent clients submit GEMM panels simultaneously
//     (so the batcher actually merges them) and each compares its int64
//     accumulators against a direct nn::gemm_accumulate() on the same
//     operands.
// Any divergence is a failure string naming the request and both values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/evaluate.hpp"

namespace axmult::check {

struct ServeDiffOptions {
  /// dse config keys to characterize; empty = serve::default_key_pool().
  std::vector<std::string> keys;
  /// nn backend names to infer through; empty = {"exact", "ca8", "cc8"}.
  std::vector<std::string> backends;
  /// Concurrent infer clients per backend (>1 exercises batching).
  unsigned clients = 4;
  /// Per-client GEMM shape (m x k times k x n).
  std::uint32_t m = 4, k = 32, n = 16;
  std::uint64_t seed = 1;
  /// Evaluation options used by BOTH the daemon and the direct calls.
  dse::EvalOptions eval;
  /// Socket path; empty derives a per-process temp path.
  std::string socket_path;
};

struct ServeDiffReport {
  std::size_t characterize_checked = 0;
  std::size_t infer_requests_checked = 0;
  std::vector<std::string> failures;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Runs the differential; throws std::runtime_error when the private
/// server cannot start at all.
[[nodiscard]] ServeDiffReport serve_diff(const ServeDiffOptions& opts);

}  // namespace axmult::check
