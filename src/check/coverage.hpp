// Per-net toggle-coverage tracking for the differential harness.
//
// Reuses the packed-lane machinery: after every 64-lane batch through an
// *unoptimized* fabric::WideEvaluator<1> (NetIds match the original
// netlist), each net's packed value word is OR-folded into two sticky
// masks — "seen 0" and "seen 1". A net counts as toggle-covered once both
// states were observed; the fraction of covered nets is the coverage the
// generator layer (generate.hpp) steers toward and the JSON report the CI
// uploads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"

namespace axmult::check {

class ToggleCoverage {
 public:
  /// Eligible nets: everything driven by a cell, a primary input or named
  /// as a primary output — excluding the GND/VCC constants, which can
  /// never toggle by definition.
  explicit ToggleCoverage(const fabric::Netlist& nl);

  /// Folds in the packed net values of the most recent 64-lane eval;
  /// `valid_lanes` masks ragged tails. The evaluator must have been
  /// constructed with {.optimize = false} on the same netlist.
  void observe(const fabric::WideEvaluator<1>& ev, std::size_t valid_lanes);

  /// Same fold for a scalar evaluation (sequential replays).
  void observe_scalar(const std::vector<std::uint8_t>& net_values);

  [[nodiscard]] std::size_t covered() const noexcept { return covered_count_; }
  [[nodiscard]] std::size_t total() const noexcept { return eligible_count_; }
  [[nodiscard]] double fraction() const noexcept {
    return eligible_count_ == 0
               ? 1.0
               : static_cast<double>(covered_count_) / static_cast<double>(eligible_count_);
  }

  /// Nets never seen in both states, up to `limit` (0 = all).
  [[nodiscard]] std::vector<fabric::NetId> uncovered(std::size_t limit = 0) const;

  /// True once per coverage increase since the last call — the accept
  /// signal of the coverage-guided generator.
  [[nodiscard]] bool take_progress() noexcept {
    const bool p = progressed_;
    progressed_ = false;
    return p;
  }

  /// Flat JSON object: net totals, fraction, and the first uncovered net
  /// names (CI artifact; see docs/TESTING.md).
  [[nodiscard]] std::string to_json(const fabric::Netlist& nl, const std::string& subject) const;

 private:
  void mark(std::size_t net, bool saw0, bool saw1);

  std::vector<std::uint8_t> state_;  ///< bit0 = seen 0, bit1 = seen 1
  std::vector<std::uint8_t> eligible_;
  std::size_t eligible_count_ = 0;
  std::size_t covered_count_ = 0;
  bool progressed_ = false;
};

}  // namespace axmult::check
