// Generator layer of the differential harness: structured operand
// distributions plus a coverage-feedback wrapper.
//
// Uniform operands alone exercise a multiplier's carry logic poorly (the
// deep-ripple corner cases are exponentially rare), so the harness rotates
// four distributions per batch:
//   * uniform              — the baseline the error sweeps use,
//   * corner-biased        — 0/1/max, walking-ones/zeros, power-of-two
//                            boundaries (where carry chains saturate),
//   * Gaussian             — the sensor-like skewed operands of Fig. 12,
//   * toggle-adversarial   — lane-to-lane few-bit walks, so adjacent packed
//                            lanes flip as many nets as possible.
// The GuidedGenerator additionally keeps a pool of operand pairs that most
// recently increased toggle coverage (coverage.hpp reports progress) and
// mutates them into later batches, steering generation toward the
// unexercised cones.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace axmult::check {

enum class Dist : std::uint8_t { kUniform, kCorner, kGaussian, kToggleAdversarial };
inline constexpr std::array<Dist, 4> kAllDists{Dist::kUniform, Dist::kCorner, Dist::kGaussian,
                                               Dist::kToggleAdversarial};

[[nodiscard]] const char* dist_name(Dist d) noexcept;

/// Fills (a[i], b[i]) for i < n from the distribution; operands are masked
/// to the given widths. Deterministic in `rng` state.
void fill_operands(Dist d, unsigned a_bits, unsigned b_bits, Xoshiro256& rng, std::uint64_t* a,
                   std::uint64_t* b, std::size_t n);

class GuidedGenerator {
 public:
  GuidedGenerator(unsigned a_bits, unsigned b_bits, std::uint64_t seed);

  /// Next operand batch: rotates the base distributions, replacing the
  /// second half with few-bit mutations of pooled pairs when available.
  void next_batch(std::uint64_t* a, std::uint64_t* b, std::size_t n);

  /// Coverage feedback — the previous batch toggled a new net; its leading
  /// pairs become mutation seeds.
  void reward(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);

  [[nodiscard]] Dist last_dist() const noexcept { return last_dist_; }

 private:
  unsigned a_bits_;
  unsigned b_bits_;
  Xoshiro256 rng_;
  unsigned round_ = 0;
  Dist last_dist_ = Dist::kUniform;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pool_;
};

}  // namespace axmult::check
