#include "check/analytic.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "check/subject.hpp"
#include "dse/evaluate.hpp"
#include "dse/jsonio.hpp"
#include "dse/space.hpp"
#include "error/metrics.hpp"
#include "mult/elementary.hpp"

namespace axmult::check {
namespace {

using error::AnalyticSpec;
using mult::Summation;

std::optional<AnalyticSpec> fail(std::string* why, const std::string& reason) {
  if (why != nullptr) *why = reason;
  return std::nullopt;
}

/// Square recursive spec: `leaf_bits`-wide elementary block `fn`, the same
/// summation at every level.
AnalyticSpec square_spec(unsigned width, unsigned leaf_bits,
                         std::uint64_t (*fn)(std::uint64_t, std::uint64_t), Summation s) {
  AnalyticSpec spec;
  spec.width = width;
  spec.leaf_bits = leaf_bits;
  spec.leaf = error::make_leaf_table(leaf_bits, leaf_bits, fn);
  unsigned levels = 0;
  for (unsigned w = leaf_bits; w < width; w *= 2) ++levels;
  spec.levels.assign(levels, s);
  return spec;
}

/// "<prefix><digits>" -> the digits, nullopt when anything else follows
/// (so Ca_8 parses but the Ca_8_pipe extension falls through).
std::optional<unsigned> suffix_number(const std::string& name, const std::string& prefix) {
  if (name.rfind(prefix, 0) != 0 || name.size() == prefix.size()) return std::nullopt;
  unsigned v = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    v = v * 10 + static_cast<unsigned>(name[i] - '0');
  }
  return v;
}

/// "Name(w,k)" -> (w, k).
std::optional<std::pair<unsigned, unsigned>> paren_pair(const std::string& name,
                                                        const std::string& prefix) {
  if (name.rfind(prefix + "(", 0) != 0 || name.back() != ')') return std::nullopt;
  const std::string inner = name.substr(prefix.size() + 1, name.size() - prefix.size() - 2);
  const auto comma = inner.find(',');
  if (comma == std::string::npos) return std::nullopt;
  char* end = nullptr;
  const unsigned w = static_cast<unsigned>(std::strtoul(inner.substr(0, comma).c_str(), &end, 10));
  const unsigned k = static_cast<unsigned>(std::strtoul(inner.substr(comma + 1).c_str(), &end, 10));
  if (w == 0) return std::nullopt;
  return std::make_pair(w, k);
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

std::optional<AnalyticSpec> catalog_analytic_spec(const std::string& name, std::string* why) {
  // Paper designs at any catalog width.
  if (const auto w = suffix_number(name, "Ca_")) {
    return square_spec(*w, 4, &mult::approx_4x4, Summation::kAccurate);
  }
  if (const auto w = suffix_number(name, "Cc_")) {
    return square_spec(*w, 4, &mult::approx_4x4, Summation::kCarryFree);
  }
  if (const auto w = suffix_number(name, "K_")) {
    return square_spec(*w, 2, &mult::kulkarni_2x2, Summation::kAccurate);
  }
  if (const auto w = suffix_number(name, "W_")) {
    return square_spec(*w, 2, &mult::rehman_2x2, Summation::kAccurate);
  }
  if (const auto w = suffix_number(name, "VivadoIP-Speed_")) {
    return square_spec(*w, 4, &mult::accurate_4x4, Summation::kAccurate);
  }
  if (const auto w = suffix_number(name, "VivadoIP-Area_")) {
    return square_spec(*w, 4, &mult::accurate_4x4, Summation::kAccurate);
  }
  if (const auto wk = paren_pair(name, "Mult")) {
    AnalyticSpec spec = square_spec(wk->first, 4, &mult::accurate_4x4, Summation::kAccurate);
    spec.trunc_lsbs = wk->second;
    return spec;
  }
  // The 8x8 design-space family.
  if (const auto wk = paren_pair(name, "OpTrunc")) {
    AnalyticSpec spec = square_spec(wk->first, 4, &mult::accurate_4x4, Summation::kAccurate);
    spec.op_trunc_lsbs = wk->second;
    return spec;
  }
  if (name == "Acc4x4+CarryFree") {
    return square_spec(8, 4, &mult::accurate_4x4, Summation::kCarryFree);
  }
  if (name == "K2x2+CarryFree") {
    return square_spec(8, 2, &mult::kulkarni_2x2, Summation::kCarryFree);
  }
  if (name == "W2x2+CarryFree") {
    return square_spec(8, 2, &mult::rehman_2x2, Summation::kCarryFree);
  }
  if (name == "K2x2+TernarySum") {
    return square_spec(8, 2, &mult::kulkarni_2x2, Summation::kAccurate);
  }
  if (name == "W2x2+TernarySum") {
    return square_spec(8, 2, &mult::rehman_2x2, Summation::kAccurate);
  }
  if (name == "Acc2x2Tree") {
    return square_spec(8, 2, &mult::accurate_2x2, Summation::kAccurate);
  }
  if (name == "Radix4Acc") {
    return square_spec(8, 4, &mult::accurate_4x4, Summation::kAccurate);
  }
  if (const auto l = suffix_number(name.substr(0, name.find('_')), "Cb")) {
    if (suffix_number(name, "Cb" + std::to_string(*l) + "_")) {
      const auto w = suffix_number(name, "Cb" + std::to_string(*l) + "_");
      AnalyticSpec spec = square_spec(*w, 4, &mult::approx_4x4, Summation::kLowerOr);
      spec.lower_or_bits = *l;
      return spec;
    }
  }
  if (name.rfind("Perf(", 0) == 0 && name.back() == ')') {
    const std::string inner = name.substr(5, name.size() - 6);  // "8,-HL" etc.
    const auto comma = inner.find(',');
    if (comma != std::string::npos) {
      const unsigned w = static_cast<unsigned>(std::strtoul(inner.substr(0, comma).c_str(),
                                                            nullptr, 10));
      const std::string tag = inner.substr(comma + 1);
      AnalyticSpec spec = square_spec(w, 4, &mult::approx_4x4, Summation::kAccurate);
      spec.drop_hl = tag == "-HL" || tag == "-HL-LH";
      spec.drop_lh = tag == "-LH" || tag == "-HL-LH";
      if (spec.drop_hl || spec.drop_lh) return spec;
    }
  }
  return fail(why, "catalog design '" + name + "' has no compositional description");
}

std::optional<AnalyticSpec> subject_analytic_spec(const std::string& key, std::string* why) {
  // The flip perturbs the netlist only; the analytic spec describes the
  // design proper, whose pre-flip netlist the subject keeps as reference.
  const auto plus = key.rfind("+flip:");
  const std::string base = plus == std::string::npos ? key : key.substr(0, plus);
  if (base.rfind("dse:", 0) == 0) {
    return dse::analytic_spec(dse::parse_key(base.substr(4)));
  }
  if (base.rfind("catalog:", 0) == 0) return catalog_analytic_spec(base.substr(8), why);
  if (base == "elem:a4x2") {
    AnalyticSpec spec;
    spec.width = 4;
    spec.leaf_bits = 4;
    spec.leaf_b_bits = 2;
    spec.leaf = error::make_leaf_table(4, 2, &mult::approx_4x2);
    return spec;
  }
  return fail(why, "subject '" + key + "' has no compositional description");
}

AnalyticDifferential analytic_differential(const std::string& key) {
  AnalyticDifferential d;
  std::string why;
  const auto spec = subject_analytic_spec(key, &why);
  if (!spec) {
    d.reason = why;
    return d;
  }
  if (const std::string unsupported = error::analytic_unsupported(*spec); !unsupported.empty()) {
    d.reason = unsupported;
    return d;
  }
  const Subject s = resolve_subject(key);
  if (s.a_bits + s.b_bits > 16) {
    d.reason = "reference sweep infeasible beyond 16 operand bits";
    return d;
  }
  if (spec->a_bits() != s.a_bits || spec->b_bits() != s.b_bits) {
    d.supported = true;
    d.failures.push_back("operand widths: spec " + std::to_string(spec->a_bits()) + "x" +
                         std::to_string(spec->b_bits()) + ", subject " +
                         std::to_string(s.a_bits) + "x" + std::to_string(s.b_bits));
    return d;
  }
  const auto am = error::analytic_metrics(*spec, &why);
  if (!am) {
    d.reason = why;
    return d;
  }
  d.supported = true;
  error::SweepConfig cfg;
  cfg.threads = 1;
  cfg.collect_pmf = true;
  cfg.collect_bit_probability = false;
  const fabric::Netlist& ref = s.reference ? *s.reference : s.netlist;
  const auto sr = error::sweep_netlist_exhaustive(ref, s.a_bits, s.b_bits, cfg);

  const auto want_u64 = [&](const char* field, std::uint64_t analytic, std::uint64_t swept) {
    if (analytic == swept) return;
    d.failures.push_back(std::string(field) + ": analytic " + std::to_string(analytic) +
                         ", sweep " + std::to_string(swept));
  };
  // At <= 8x8 the cross strategy replays the sweep accumulator in sweep
  // order, so the doubles must agree to the last bit — no tolerance.
  const auto want_f64 = [&](const char* field, double analytic, double swept) {
    if (analytic == swept) return;
    std::ostringstream os;
    os << std::setprecision(17) << field << ": analytic " << analytic << ", sweep " << swept;
    d.failures.push_back(os.str());
  };
  const error::ErrorMetrics& a = am->metrics;
  const error::ErrorMetrics& r = sr.metrics;
  want_u64("samples", a.samples, r.samples);
  want_u64("max_error", a.max_error, r.max_error);
  want_u64("occurrences", a.occurrences, r.occurrences);
  want_u64("max_error_occurrences", a.max_error_occurrences, r.max_error_occurrences);
  want_f64("avg_error", a.avg_error, r.avg_error);
  want_f64("avg_relative_error", a.avg_relative_error, r.avg_relative_error);
  want_f64("mean_signed_error", a.mean_signed_error, r.mean_signed_error);
  want_f64("error_probability", am->error_probability, r.error_probability());
  if (am->has_pmf && am->pmf != sr.pmf) {
    d.failures.push_back("pmf: " + std::to_string(am->pmf.size()) + " analytic vs " +
                         std::to_string(sr.pmf.size()) + " swept magnitudes (or counts differ)");
  }
  return d;
}

// ---- analytic-metrics golden ----------------------------------------------

std::vector<std::string> analytic_golden_subjects() {
  return {
      // Exact 16-bit numbers out of the factor strategy on the paper cores.
      "catalog:Ca_16",
      "catalog:K_16",
      // The 2x2-leaf core: three recursion levels through the same factor
      // strategy, far more equivalence classes than Ca.
      "catalog:W_16",
      // Truncated variant (non-trivial PMF shift) and a truncated+swapped
      // config only the dse grammar can express.
      "catalog:Mult(16,4)",
      "dse:w16;l=a4x4;s=AA;o=0;t=6;x=1;g=0",
  };
}

void write_analytic_metrics_golden(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_analytic_metrics_golden: cannot open " + path);
  for (const std::string& key : analytic_golden_subjects()) {
    std::string why;
    const auto spec = subject_analytic_spec(key, &why);
    if (!spec) throw std::runtime_error("analytic golden: " + key + ": " + why);
    const auto am = error::analytic_metrics(*spec, &why);
    if (!am) throw std::runtime_error("analytic golden: " + key + ": " + why);
    const error::ErrorMetrics& m = am->metrics;
    out << "{\"subject\": \"" << key << "\", \"method\": \"" << am->method
        << "\", \"samples\": " << m.samples << ", \"max_error\": " << m.max_error
        << ", \"occurrences\": " << m.occurrences
        << ", \"max_error_occurrences\": " << m.max_error_occurrences
        << ", \"avg_error\": " << fmt_double(m.avg_error)
        << ", \"avg_relative_error\": " << fmt_double(m.avg_relative_error)
        << ", \"mean_signed_error\": " << fmt_double(m.mean_signed_error)
        << ", \"error_probability\": " << fmt_double(am->error_probability) << "}\n";
  }
}

std::optional<std::string> replay_analytic_metrics_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "analytic golden: cannot open " + path;
  namespace js = dse::jsonio;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const auto subject = js::find_string(line, "subject");
    if (!subject) return "analytic golden: malformed line in " + path;
    std::string why;
    const auto spec = subject_analytic_spec(*subject, &why);
    if (!spec) return "analytic golden " + *subject + ": " + why;
    const auto am = error::analytic_metrics(*spec, &why);
    if (!am) return "analytic golden " + *subject + ": " + why;
    std::string failure;
    const auto want_u64 = [&](const char* field, std::uint64_t got) {
      const auto frozen = js::find_number(line, field);
      if (!frozen) {
        failure = std::string("missing field ") + field;
      } else if (static_cast<std::uint64_t>(*frozen) != got) {
        failure = std::string(field) + ": frozen " +
                  std::to_string(static_cast<std::uint64_t>(*frozen)) + ", recomputed " +
                  std::to_string(got);
      }
    };
    // Integer metrics replay exactly; the double folds get a 1e-12
    // relative tolerance (long-double accumulation differs across ABIs).
    const auto want_f64 = [&](const char* field, double got) {
      const auto frozen = js::find_number(line, field);
      if (!frozen) {
        failure = std::string("missing field ") + field;
        return;
      }
      const double scale = std::max(std::fabs(*frozen), std::fabs(got));
      if (std::fabs(*frozen - got) > 1e-12 * std::max(scale, 1e-300)) {
        std::ostringstream os;
        os << std::setprecision(17) << field << ": frozen " << *frozen << ", recomputed " << got;
        failure = os.str();
      }
    };
    const error::ErrorMetrics& m = am->metrics;
    want_u64("samples", m.samples);
    if (failure.empty()) want_u64("max_error", m.max_error);
    if (failure.empty()) want_u64("occurrences", m.occurrences);
    if (failure.empty()) want_u64("max_error_occurrences", m.max_error_occurrences);
    if (failure.empty()) want_f64("avg_error", m.avg_error);
    if (failure.empty()) want_f64("avg_relative_error", m.avg_relative_error);
    if (failure.empty()) want_f64("mean_signed_error", m.mean_signed_error);
    if (failure.empty()) want_f64("error_probability", am->error_probability);
    if (const auto method = js::find_string(line, "method");
        failure.empty() && method && *method != am->method) {
      failure = "method: frozen " + *method + ", recomputed " + am->method;
    }
    if (!failure.empty()) return "analytic golden " + *subject + ": " + failure;
  }
  if (lines == 0) return "analytic golden: " + path + " is empty";
  return std::nullopt;
}

}  // namespace axmult::check
