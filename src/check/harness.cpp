#include "check/harness.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "check/analytic.hpp"
#include "check/backends.hpp"
#include "check/coverage.hpp"
#include "check/generate.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "dse/space.hpp"
#include "fabric/faults.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "nn/mac.hpp"

namespace axmult::check {
namespace {

constexpr std::size_t kMaxFailuresPerSubject = 4;

void localize(const Subject& s, Oracle& oracle, Counterexample& cx) {
  if (s.reference) {
    cx.net = first_divergent_net(*s.reference, s.netlist, s.a_bits, s.b_bits, cx.a, cx.b);
  } else {
    cx.net = oracle.divergent_net(cx.a, cx.b);
  }
  if (!cx.net.empty()) {
    cx.cone_cells = cone_cell_count(s.netlist, find_net(s.netlist, cx.net));
  }
}

/// Per-subject one-off invariants (independent of the fuzz batches).
void check_invariants(const Subject& s, Oracle& oracle, std::uint64_t stream_seed,
                      SubjectReport& rep) {
  // Conservation law of the optimizer's bookkeeping: every cell of the
  // input netlist is either kept, folded away, CSE-merged or dead.
  const fabric::OptimizeStats& st = oracle.optimize_stats();
  if (st.cells_before != st.cells_after + st.folded_cells + st.cse_merged + st.dead_removed) {
    Counterexample cx;
    cx.subject = s.key;
    cx.kind = "optstats";
    cx.lhs = "cells_before";
    cx.rhs = "cells_after+folded+cse+dead";
    cx.lhs_value = st.cells_before;
    cx.rhs_value = st.cells_after + st.folded_cells + st.cse_merged + st.dead_removed;
    rep.failures.push_back(cx);
  }

  // Fault-free baseline: injecting a stuck-at fault at the value the net
  // already takes on some input must not change that input's product, and
  // with_stuck_at documents identical cell count.
  const auto sites = fabric::fault_sites(s.netlist);
  if (!sites.empty()) {
    Xoshiro256 rng(derive_stream_seed(stream_seed, 0xfa));
    fabric::Evaluator scalar(s.netlist);
    const std::uint64_t am = (std::uint64_t{1} << s.a_bits) - 1;
    const std::uint64_t bm = (std::uint64_t{1} << s.b_bits) - 1;
    for (unsigned trial = 0; trial < 3; ++trial) {
      const std::uint64_t a = rng() & am;
      const std::uint64_t b = rng() & bm;
      const std::uint64_t want = scalar.eval_word(a, s.a_bits, b, s.b_bits);
      const fabric::NetId site = sites[rng.below(sites.size())];
      const bool value = scalar.net_values()[site] != 0;
      const fabric::Netlist faulty = fabric::with_stuck_at(s.netlist, {site, value});
      fabric::Evaluator faulty_ev(faulty);
      const std::uint64_t got = faulty_ev.eval_word(a, s.a_bits, b, s.b_bits);
      if (got != want || faulty.cells().size() != s.netlist.cells().size()) {
        Counterexample cx;
        cx.subject = s.key;
        cx.kind = "fault-baseline";
        cx.lhs = "fault-free";
        cx.rhs = "stuck@" + s.netlist.net_name(site);
        cx.a = a;
        cx.b = b;
        cx.lhs_value = want;
        cx.rhs_value = got;
        cx.net = s.netlist.net_name(site);
        rep.failures.push_back(cx);
        break;
      }
    }
  }

  // The product table's documented operand-swap identity:
  // mul_swapped(a, b) == mul(b, a) for every tabulated pair.
  if (s.model && s.a_bits == s.b_bits && s.a_bits <= 8) {
    const nn::MacBackend table(s.name, s.model);
    Xoshiro256 rng(derive_stream_seed(stream_seed, 0x5a));
    const unsigned mask = (1u << table.data_bits()) - 1;
    for (unsigned trial = 0; trial < 256; ++trial) {
      const unsigned a = static_cast<unsigned>(rng()) & mask;
      const unsigned b = static_cast<unsigned>(rng()) & mask;
      if (table.mul_swapped(a, b) != table.mul(b, a)) {
        Counterexample cx;
        cx.subject = s.key;
        cx.kind = "swap";
        cx.lhs = "mul(b,a)";
        cx.rhs = "mul_swapped(a,b)";
        cx.a = a;
        cx.b = b;
        cx.lhs_value = table.mul(b, a);
        cx.rhs_value = table.mul_swapped(a, b);
        rep.failures.push_back(cx);
        break;
      }
    }
  }
}

}  // namespace

std::size_t FuzzReport::failure_count() const {
  std::size_t n = sequential_failures.size() + gemm_failures.size();
  for (const SubjectReport& s : subjects) n += s.failures.size();
  return n;
}

std::string FuzzReport::to_json() const {
  std::ostringstream os;
  os << "{\"seed\": " << seed << ", \"subjects\": " << subjects.size()
     << ", \"total_pairs\": " << total_pairs << ", \"failures\": " << failure_count() << "}\n";
  for (const SubjectReport& s : subjects) {
    os << "{\"subject\": \"" << s.key << "\", \"pairs\": " << s.pairs
       << ", \"backends\": " << s.backend_count << ", \"nets\": " << s.nets
       << ", \"covered\": " << s.covered << ", \"coverage\": " << s.coverage
       << ", \"failures\": " << s.failures.size() << "}\n";
    for (const Counterexample& cx : s.failures) os << repro_json(cx);
  }
  for (const std::string& f : sequential_failures) {
    os << "{\"sequential_failure\": \"" << f << "\"}\n";
  }
  for (const std::string& f : gemm_failures) os << "{\"gemm_failure\": \"" << f << "\"}\n";
  return os.str();
}

std::vector<std::string> fuzz_subject_keys(const FuzzOptions& opts) {
  std::vector<std::string> keys;
  std::set<std::string> seen;
  auto add = [&](std::string key) {
    if (seen.insert(key).second) keys.push_back(std::move(key));
  };
  if (opts.include_catalog) {
    for (auto& k : catalog_subject_keys(opts.width)) add(std::move(k));
  }
  if (opts.include_elem) add("elem:a4x2");
  const dse::SpaceSpec spec = dse::make_space(opts.space);
  for (unsigned i = 0; i < opts.iters; ++i) {
    Xoshiro256 rng(derive_stream_seed(opts.seed, 0xd5e000 + i));
    add("dse:" + dse::config_key(dse::sample(spec, rng)));
  }
  return keys;
}

SubjectReport check_subject(const std::string& key, const FuzzOptions& opts,
                            std::uint64_t stream_seed) {
  const Subject s = resolve_subject(key);
  SubjectReport rep;
  rep.key = key;

  Oracle oracle(s);
  rep.backend_count = oracle.backends().size();
  ToggleCoverage coverage(s.netlist);
  oracle.set_coverage(&coverage);
  GuidedGenerator gen(s.a_bits, s.b_bits, derive_stream_seed(stream_seed, 0x6e));

  std::optional<fabric::Evaluator> reference;
  if (s.reference) reference.emplace(*s.reference);
  bool flip_reported = false;

  std::vector<std::uint64_t> a(opts.batch_size);
  std::vector<std::uint64_t> b(opts.batch_size);
  for (unsigned batch = 0; batch < opts.batches; ++batch) {
    gen.next_batch(a.data(), b.data(), opts.batch_size);
    const auto mismatch = oracle.run(a.data(), b.data(), opts.batch_size);
    rep.pairs += opts.batch_size;

    if (mismatch && rep.failures.size() < kMaxFailuresPerSubject) {
      const Mismatch& m = *mismatch;
      Counterexample cx;
      cx.subject = key;
      cx.kind = "backend-mismatch";
      cx.lhs = backend_name(m.lhs);
      cx.rhs = backend_name(m.rhs);
      const auto fails = [&](std::uint64_t aa, std::uint64_t bb) {
        return oracle.eval_one(m.lhs, aa, bb) != oracle.eval_one(m.rhs, aa, bb);
      };
      std::tie(cx.a, cx.b) = shrink_inputs(m.a, m.b, fails, &cx.shrink_steps);
      cx.lhs_value = oracle.eval_one(m.lhs, cx.a, cx.b);
      cx.rhs_value = oracle.eval_one(m.rhs, cx.a, cx.b);
      localize(s, oracle, cx);
      rep.failures.push_back(std::move(cx));
    }

    // Documented error claim against the exact product.
    if (s.claim && s.model && rep.failures.size() < kMaxFailuresPerSubject) {
      for (std::size_t i = 0; i < opts.batch_size; ++i) {
        const std::uint64_t approx = s.model->multiply(a[i], b[i]);
        if (s.claim(a[i], b[i], a[i] * b[i], approx)) continue;
        Counterexample cx;
        cx.subject = key;
        cx.kind = "claim";
        cx.lhs = "documented-claim";
        cx.rhs = "model";
        const auto fails = [&](std::uint64_t aa, std::uint64_t bb) {
          return !s.claim(aa, bb, aa * bb, s.model->multiply(aa, bb));
        };
        std::tie(cx.a, cx.b) = shrink_inputs(a[i], b[i], fails, &cx.shrink_steps);
        cx.lhs_value = cx.a * cx.b;
        cx.rhs_value = s.model->multiply(cx.a, cx.b);
        rep.failures.push_back(std::move(cx));
        break;
      }
    }

    // "+flip" subjects: the injected design bug must surface as a
    // divergence from the pre-flip reference, shrunk and localized.
    if (reference && !flip_reported) {
      for (std::size_t i = 0; i < opts.batch_size; ++i) {
        const std::uint64_t want = reference->eval_word(a[i], s.a_bits, b[i], s.b_bits);
        const std::uint64_t got = oracle.eval_one(BackendId::kScalar, a[i], b[i]);
        if (want == got) continue;
        Counterexample cx;
        cx.subject = key;
        cx.kind = "flip";
        cx.lhs = "reference";
        cx.rhs = "flipped";
        const auto fails = [&](std::uint64_t aa, std::uint64_t bb) {
          return reference->eval_word(aa, s.a_bits, bb, s.b_bits) !=
                 oracle.eval_one(BackendId::kScalar, aa, bb);
        };
        std::tie(cx.a, cx.b) = shrink_inputs(a[i], b[i], fails, &cx.shrink_steps);
        cx.lhs_value = reference->eval_word(cx.a, s.a_bits, cx.b, s.b_bits);
        cx.rhs_value = oracle.eval_one(BackendId::kScalar, cx.a, cx.b);
        localize(s, oracle, cx);
        rep.failures.push_back(std::move(cx));
        flip_reported = true;
        break;
      }
    }

    if (coverage.take_progress()) gen.reward(a.data(), b.data(), opts.batch_size);
  }

  check_invariants(s, oracle, stream_seed, rep);

  // Analytic-engine differential: the compositional metrics must match an
  // exhaustive sweep of the reference netlist bit-for-bit. Outside the
  // engine's envelope (wide operands, no compositional description) the
  // differential reports unsupported and the subject is simply skipped.
  if (opts.analytic && s.a_bits + s.b_bits <= 16 && rep.failures.size() < kMaxFailuresPerSubject) {
    const AnalyticDifferential diff = analytic_differential(key);
    for (const std::string& f : diff.failures) {
      Counterexample cx;
      cx.subject = key;
      cx.kind = "analytic";
      cx.lhs = "analytic";
      cx.rhs = "netlist-sweep";
      cx.net = f;  // field-level description, no single operand pair
      rep.failures.push_back(std::move(cx));
      if (rep.failures.size() >= kMaxFailuresPerSubject) break;
    }
  }

  rep.nets = coverage.total();
  rep.covered = coverage.covered();
  rep.coverage = coverage.fraction();
  rep.coverage_json = coverage.to_json(s.netlist, key);
  return rep;
}

FuzzReport fuzz(const FuzzOptions& opts) {
  FuzzReport report;
  report.seed = opts.seed;
  const std::vector<std::string> keys = fuzz_subject_keys(opts);
  report.subjects.resize(keys.size());

  parallel_chunks(keys.size(), opts.threads, [&] {
    return [&](std::uint64_t chunk) {
      report.subjects[chunk] =
          check_subject(keys[chunk], opts, derive_stream_seed(opts.seed, chunk));
    };
  });
  for (const SubjectReport& s : report.subjects) report.total_pairs += s.pairs;

  if (opts.sequential) {
    struct SeqCase {
      const char* label;
      fabric::Netlist nl;
      mult::MultiplierPtr model;
      unsigned latency;
    };
    std::vector<SeqCase> cases;
    cases.push_back({"pipelined-Ca8",
                     multgen::make_pipelined_netlist(8, mult::Summation::kAccurate),
                     mult::make_ca(8), multgen::pipeline_latency(8)});
    cases.push_back({"pipelined-Cc8",
                     multgen::make_pipelined_netlist(8, mult::Summation::kCarryFree),
                     mult::make_cc(8), multgen::pipeline_latency(8)});
    cases.push_back({"mac-Ca8", multgen::make_mac_netlist(8, mult::Summation::kAccurate, 24),
                     nullptr, 0});
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const SeqCase& c = cases[i];
      if (auto fail = check_sequential(c.nl, 8, 8, c.model.get(), c.latency,
                                       derive_stream_seed(opts.seed, 0x5e9000 + i))) {
        report.sequential_failures.push_back(std::string(c.label) + ": " + *fail);
      }
    }
  }

  if (opts.gemm) {
    for (const char* key : {"catalog:Ca_8", "catalog:Cc_8", "catalog:VivadoIP-Area_8"}) {
      if (auto fail = check_gemm(resolve_subject(key), derive_stream_seed(opts.seed, 0x6e33))) {
        report.gemm_failures.push_back(std::string(key) + ": " + *fail);
      }
    }
  }

  if (!opts.repro_dir.empty()) {
    for (const SubjectReport& s : report.subjects) {
      for (const Counterexample& cx : s.failures) (void)write_repro(cx, opts.repro_dir);
    }
  }
  return report;
}

}  // namespace axmult::check
