// Golden product vectors: the published/derived numeric behavior of the
// library's multipliers frozen into checked-in files, so any later change
// to a model, a netlist generator or an evaluator that alters a single
// product fails loudly with the exact operand pair.
//
// File format (hand-written dialect, dse::jsonio reads the header):
//   line 1: {"subject": "<key>", "mode": "...", "a_bits": N, "b_bits": N,
//            "seed": S, "count": C}
//   then C lines of "a b product" in decimal.
// Modes:
//   exhaustive  every (a, b) pair — small operand widths only,
//   errors      only the pairs where the model differs from the exact
//               product (e.g. the paper's Table 2: exactly six 4x4 pairs),
//   sampled     `count` seeded-uniform pairs — wide subjects where the
//               full table would be megabytes.
// The checked-in set lives in tests/golden/ and is regenerated with
// `axcheck emit-golden --dir tests/golden` (see docs/TESTING.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/subject.hpp"

namespace axmult::check {

struct GoldenRow {
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t product;
};

struct GoldenFile {
  std::string subject;  ///< subject key (subject.hpp grammar)
  std::string mode;     ///< "exhaustive" | "errors" | "sampled"
  unsigned a_bits = 0;
  unsigned b_bits = 0;
  std::uint64_t seed = 0;  ///< sampled mode only
  std::vector<GoldenRow> rows;
};

/// One entry of the checked-in golden set.
struct GoldenSpec {
  std::string file;     ///< filename under the golden directory
  std::string subject;  ///< subject key
  std::string mode;
  std::size_t count = 0;   ///< sampled mode: pairs to draw
  std::uint64_t seed = 0;  ///< sampled mode: derive_stream_seed stream
};

/// The vectors this repo checks in under tests/golden/.
[[nodiscard]] std::vector<GoldenSpec> default_golden_set();

/// Generates the vectors for one spec from the subject's authoritative
/// path (behavioral model when present, scalar netlist evaluation
/// otherwise).
[[nodiscard]] GoldenFile make_golden(const GoldenSpec& spec);

void write_golden(const GoldenFile& g, const std::string& path);

/// Throws std::runtime_error on unreadable or malformed files.
[[nodiscard]] GoldenFile read_golden(const std::string& path);

/// Re-executes every row of `g` against every backend of the
/// reconstructed subject; returns a failure description naming the first
/// disagreeing (backend, pair), or nullopt when all products match.
[[nodiscard]] std::optional<std::string> replay_golden(const GoldenFile& g);

/// Writes default_golden_set() under `dir`; returns the file count.
std::size_t emit_golden_set(const std::string& dir);

}  // namespace axmult::check
