#include "check/subject.hpp"

#include <stdexcept>

#include "analysis/catalog.hpp"
#include "common/rng.hpp"
#include "dse/evaluate.hpp"
#include "dse/space.hpp"
#include "fabric/transforms.hpp"
#include "mult/elementary.hpp"
#include "multgen/generators.hpp"

namespace axmult::check {
namespace {

/// Behavioral model over a plain function pointer (the elementary blocks).
class FnMultiplier final : public mult::Multiplier {
 public:
  using Fn = std::uint64_t (*)(std::uint64_t, std::uint64_t);
  FnMultiplier(std::string name, unsigned a_bits, unsigned b_bits, Fn fn)
      : name_(std::move(name)), a_bits_(a_bits), b_bits_(b_bits), fn_(fn) {}

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override {
    return fn_(a & ((std::uint64_t{1} << a_bits_) - 1), b & ((std::uint64_t{1} << b_bits_) - 1));
  }
  [[nodiscard]] unsigned a_bits() const noexcept override { return a_bits_; }
  [[nodiscard]] unsigned b_bits() const noexcept override { return b_bits_; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  unsigned a_bits_;
  unsigned b_bits_;
  Fn fn_;
};

/// True when the model reproduces a*b over the full (<= 8x8) operand
/// space. Wider models are never marked exact here — the caller decides
/// from catalog metadata instead of sampling (a sampled "exact" would turn
/// a later legitimate approximation hit into a false claim violation).
bool probed_exact(const mult::Multiplier& m) {
  if (m.a_bits() + m.b_bits() > 16) return false;
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << m.a_bits()); ++a) {
    for (std::uint64_t b = 0; b < (std::uint64_t{1} << m.b_bits()); ++b) {
      if (m.multiply(a, b) != a * b) return false;
    }
  }
  return true;
}

ClaimFn exact_claim() {
  return [](std::uint64_t, std::uint64_t, std::uint64_t exact, std::uint64_t approx) {
    return approx == exact;
  };
}

/// Every non-perturbed approximation in the library drops carries or
/// product bits, so it can only under-approximate.
ClaimFn under_approx_claim() {
  return [](std::uint64_t, std::uint64_t, std::uint64_t exact, std::uint64_t approx) {
    return approx <= exact;
  };
}

/// Table 2: the proposed 4x4 errs on exactly six pairs, magnitude 8.
ClaimFn approx_4x4_claim() {
  return [](std::uint64_t a, std::uint64_t b, std::uint64_t exact, std::uint64_t approx) {
    const std::uint64_t err = exact - approx;  // one-sided
    return approx <= exact && (mult::approx_4x4_errs(a, b) ? err == 8 : err == 0);
  };
}

/// Section 3.1: the 4x2 block truncates P0, erring by 1 iff A0 & B0.
ClaimFn approx_4x2_claim() {
  return [](std::uint64_t a, std::uint64_t b, std::uint64_t exact, std::uint64_t approx) {
    const bool errs = ((a & 1) != 0) && ((b & 1) != 0);
    return approx <= exact && exact - approx == (errs ? 1u : 0u);
  };
}

Subject make_elem_a4x2() {
  Subject s;
  s.key = "elem:a4x2";
  s.name = "approx4x2";
  s.a_bits = 4;
  s.b_bits = 2;
  s.model = std::make_shared<FnMultiplier>("approx4x2", 4, 2, &mult::approx_4x2);
  fabric::Netlist nl;
  multgen::BitVec a;
  multgen::BitVec b;
  for (unsigned i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < 2; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const multgen::BitVec p = multgen::build_approx_4x2(nl, a, b, "u");
  for (std::size_t i = 0; i < p.size(); ++i) nl.add_output("p" + std::to_string(i), p[i]);
  s.netlist = std::move(nl);
  s.claim = approx_4x2_claim();
  return s;
}

Subject make_dse_subject(const std::string& config_key) {
  dse::Config cfg = dse::parse_key(config_key);
  dse::canonicalize(cfg);
  Subject s;
  s.key = "dse:" + dse::config_key(cfg);
  s.name = dse::display_name(cfg);
  s.a_bits = cfg.width;
  s.b_bits = cfg.width;
  s.model = dse::make_model(cfg);
  s.netlist = dse::make_core_netlist(cfg);
  s.exact = probed_exact(*s.model);
  if (s.exact) {
    s.claim = exact_claim();
  } else if (dse::config_key(cfg) == dse::config_key(dse::paper_approx4x4())) {
    s.claim = approx_4x4_claim();
  } else if (cfg.flips.empty()) {
    // Perturbed leaves may overshoot the exact product; everything else in
    // the config space only loses carries/bits.
    s.claim = under_approx_claim();
  }
  return s;
}

Subject make_catalog_subject(const std::string& name) {
  const analysis::DesignPoint* found = nullptr;
  std::vector<analysis::DesignPoint> points;
  for (unsigned width : {4u, 8u, 16u}) {
    for (auto& p : analysis::paper_designs(width)) points.push_back(std::move(p));
  }
  for (auto& p : analysis::evo_family_8x8()) points.push_back(std::move(p));
  for (const auto& p : points) {
    if (p.name == name) {
      found = &p;
      break;
    }
  }
  if (found == nullptr || !found->has_netlist()) {
    throw std::invalid_argument("check: unknown catalog subject '" + name + "'");
  }
  Subject s;
  s.key = "catalog:" + name;
  s.name = name;
  s.a_bits = found->model->a_bits();
  s.b_bits = found->model->b_bits();
  s.model = found->model;
  s.netlist = found->netlist();
  s.exact = found->category == "ip" || probed_exact(*s.model);
  if (s.exact) {
    s.claim = exact_claim();
  } else {
    s.claim = under_approx_claim();
  }
  return s;
}

}  // namespace

Subject resolve_subject(const std::string& key) {
  // Peel a trailing "+flip:<cell>:<bit>" perturbation first.
  const auto plus = key.rfind("+flip:");
  if (plus != std::string::npos) {
    Subject s = resolve_subject(key.substr(0, plus));
    const std::string args = key.substr(plus + 6);
    const auto colon = args.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("check: malformed flip suffix in '" + key + "'");
    }
    const auto cell = static_cast<std::uint32_t>(std::stoul(args.substr(0, colon)));
    const auto bit = static_cast<unsigned>(std::stoul(args.substr(colon + 1)));
    s.reference = s.netlist;
    s.netlist = fabric::with_lut_init_flip(*s.reference, cell, bit);
    s.key = key;
    s.name += "+flip";
    // The netlist no longer matches the model's documented behavior.
    s.exact = false;
    s.claim = nullptr;
    return s;
  }
  if (key.rfind("dse:", 0) == 0) return make_dse_subject(key.substr(4));
  if (key.rfind("catalog:", 0) == 0) return make_catalog_subject(key.substr(8));
  if (key == "elem:a4x2") return make_elem_a4x2();
  throw std::invalid_argument("check: unknown subject key '" + key + "'");
}

std::vector<std::string> catalog_subject_keys(unsigned width) {
  std::vector<std::string> keys;
  for (const auto& p : analysis::paper_designs(width)) {
    if (p.has_netlist()) keys.push_back("catalog:" + p.name);
  }
  return keys;
}

std::optional<std::string> find_observable_flip(const std::string& base_key, std::uint64_t seed) {
  const Subject base = resolve_subject(base_key);
  const auto luts = fabric::lut_cells(base.netlist);
  if (luts.empty()) return std::nullopt;
  Xoshiro256 rng(seed);
  for (unsigned attempt = 0; attempt < 256; ++attempt) {
    const std::uint32_t cell = luts[rng.below(luts.size())];
    const auto bit = static_cast<unsigned>(rng.below(64));
    const fabric::Netlist flipped = fabric::with_lut_init_flip(base.netlist, cell, bit);
    if (!fabric::probably_equivalent(base.netlist, flipped, 2048,
                                     derive_stream_seed(seed, attempt))) {
      return base_key + "+flip:" + std::to_string(cell) + ":" + std::to_string(bit);
    }
  }
  return std::nullopt;
}

}  // namespace axmult::check
