#include "check/coverage.hpp"

#include <sstream>

#include "fabric/lut6.hpp"

namespace axmult::check {
namespace {

/// Constant propagation from GND/VCC through the cell graph. Generators
/// routinely pad sub-block adders with constant operand bits (e.g. the
/// 6-bit Kulkarni sub-products summed on 8-bit chains), so a raw netlist
/// carries cells whose outputs can never toggle under ANY input; counting
/// them as coverage targets would put 100% out of reach by construction.
/// Returns, per net: -1 = input-dependent, 0/1 = provably constant.
std::vector<std::int8_t> constant_nets(const fabric::Netlist& nl) {
  std::vector<std::int8_t> cv(nl.net_count(), -1);
  cv[fabric::kNetGnd] = 0;
  cv[fabric::kNetVcc] = 1;
  for (const fabric::NetId in : nl.inputs()) cv[in] = -1;
  for (const std::uint32_t ci : nl.topo_order()) {
    const fabric::Cell& c = nl.cells()[ci];
    switch (c.kind) {
      case fabric::CellKind::kLut6: {
        unsigned idx = 0;
        bool known = true;
        for (unsigned b = 0; b < 6 && known; ++b) {
          if (cv[c.in[b]] < 0) known = false;
          idx |= static_cast<unsigned>(cv[c.in[b]] == 1) << b;
        }
        // Not all-constant inputs: the output COULD still be constant
        // (don't-care INIT space), but cofactoring against partial
        // constants is the optimizer's job; unknown is the safe answer.
        if (!known) break;
        cv[c.out[0]] = fabric::lut_o6(c.init, idx) ? 1 : 0;
        if (c.out[1] != fabric::kNoNet) cv[c.out[1]] = fabric::lut_o5(c.init, idx) ? 1 : 0;
        break;
      }
      case fabric::CellKind::kCarry4: {
        std::int8_t carry = cv[c.in[0]];
        for (unsigned i = 0; i < 4; ++i) {
          const std::int8_t s = cv[c.in[1 + i]];
          const std::int8_t di = cv[c.in[5 + i]];
          if (c.out[i] != fabric::kNoNet) {
            cv[c.out[i]] = (s < 0 || carry < 0) ? std::int8_t{-1}
                                                : static_cast<std::int8_t>(s ^ carry);
          }
          carry = s < 0 ? std::int8_t{-1} : (s != 0 ? carry : di);  // MUXCY
          if (c.out[4 + i] != fabric::kNoNet) cv[c.out[4 + i]] = carry;
        }
        break;
      }
      case fabric::CellKind::kDsp:
      case fabric::CellKind::kFdre:
        // Products of constants never occur in practice and flip-flop
        // state is input-driven; leave every output unknown.
        break;
    }
  }
  return cv;
}

}  // namespace

ToggleCoverage::ToggleCoverage(const fabric::Netlist& nl) {
  state_.assign(nl.net_count(), 0);
  eligible_.assign(nl.net_count(), 0);
  for (const fabric::NetId n : nl.inputs()) eligible_[n] = 1;
  for (const fabric::NetId n : nl.outputs()) {
    if (n != fabric::kNetGnd && n != fabric::kNetVcc) eligible_[n] = 1;
  }
  for (const fabric::Cell& c : nl.cells()) {
    for (const fabric::NetId n : c.out) {
      if (n != fabric::kNoNet) eligible_[n] = 1;
    }
  }
  eligible_[fabric::kNetGnd] = 0;
  eligible_[fabric::kNetVcc] = 0;
  const auto cv = constant_nets(nl);
  for (std::size_t n = 0; n < eligible_.size(); ++n) {
    if (cv[n] >= 0) eligible_[n] = 0;  // provably constant: can never toggle
  }
  for (const std::uint8_t e : eligible_) eligible_count_ += e;
}

void ToggleCoverage::mark(std::size_t net, bool saw0, bool saw1) {
  if (eligible_[net] == 0) return;
  const std::uint8_t before = state_[net];
  const std::uint8_t after =
      static_cast<std::uint8_t>(before | (saw0 ? 1u : 0u) | (saw1 ? 2u : 0u));
  if (after == before) return;
  state_[net] = after;
  if (after == 3 && before != 3) {
    ++covered_count_;
    progressed_ = true;
  }
}

void ToggleCoverage::observe(const fabric::WideEvaluator<1>& ev, std::size_t valid_lanes) {
  if (valid_lanes == 0) return;
  const std::uint64_t mask =
      valid_lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid_lanes) - 1;
  const auto& values = ev.net_values();
  const std::size_t nets = state_.size();
  for (std::size_t n = 0; n < nets; ++n) {
    if (state_[n] == 3 || eligible_[n] == 0) continue;
    const std::uint64_t w = values[n];
    mark(n, (~w & mask) != 0, (w & mask) != 0);
  }
}

void ToggleCoverage::observe_scalar(const std::vector<std::uint8_t>& net_values) {
  const std::size_t nets = std::min(state_.size(), net_values.size());
  for (std::size_t n = 0; n < nets; ++n) {
    if (state_[n] == 3 || eligible_[n] == 0) continue;
    mark(n, net_values[n] == 0, net_values[n] != 0);
  }
}

std::vector<fabric::NetId> ToggleCoverage::uncovered(std::size_t limit) const {
  std::vector<fabric::NetId> nets;
  for (std::size_t n = 0; n < state_.size(); ++n) {
    if (eligible_[n] != 0 && state_[n] != 3) {
      nets.push_back(static_cast<fabric::NetId>(n));
      if (limit != 0 && nets.size() >= limit) break;
    }
  }
  return nets;
}

std::string ToggleCoverage::to_json(const fabric::Netlist& nl, const std::string& subject) const {
  std::ostringstream os;
  os << "{\"subject\": \"" << subject << "\", \"nets\": " << eligible_count_
     << ", \"covered\": " << covered_count_ << ", \"coverage\": " << fraction()
     << ", \"uncovered\": [";
  const auto missing = uncovered(32);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    os << (i ? ", " : "") << '"' << nl.net_name(missing[i]) << '"';
  }
  os << "]}";
  return os.str();
}

}  // namespace axmult::check
