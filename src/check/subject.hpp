// Subjects of the differential conformance harness.
//
// A Subject is one design under test in the two coupled forms every design
// in this library has — behavioral model and structural netlist — plus the
// metadata the oracle layer (backends.hpp) needs: operand widths, whether
// the model claims exactness, and any documented per-pair error claim
// (e.g. the paper's Table 2 "exactly six erroneous pairs of magnitude 8").
//
// Subjects are addressed by a stable key string so a shrunk counterexample
// repro file can name the design it fails on and `axcheck replay` can
// reconstruct it bit-for-bit:
//   dse:<config key>          a dse::Config core (model + netlist)
//   catalog:<name>            analysis::paper_designs(4/8/16) / evo_family_8x8
//   elem:a4x2                 the asymmetric approximate 4x2 block
//   <key>+flip:<cell>:<bit>   LUT INIT bit flipped on the netlist side only
//                             (a deliberate "design bug"; the pre-flip
//                             netlist is kept for net-level localization)
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fabric/netlist.hpp"
#include "mult/multiplier.hpp"

namespace axmult::check {

/// Documented-error predicate: true when (approx, exact) at (a, b) is
/// within the design's published error behavior.
using ClaimFn = std::function<bool(std::uint64_t a, std::uint64_t b, std::uint64_t exact,
                                   std::uint64_t approx)>;

struct Subject {
  std::string key;
  std::string name;
  unsigned a_bits = 8;
  unsigned b_bits = 8;
  mult::MultiplierPtr model;  ///< null for netlist-only subjects
  fabric::Netlist netlist;    ///< multgen I/O convention (a*, b* -> p*)
  /// Pre-perturbation netlist of "+flip" subjects (same cell/net indices),
  /// the reference the shrinker diffs against to name the offending net.
  std::optional<fabric::Netlist> reference;
  bool exact = false;       ///< model claims the exact product
  ClaimFn claim;            ///< null when the design documents no claim
};

/// Reconstructs a subject from its key; throws std::invalid_argument on
/// unknown or malformed keys.
[[nodiscard]] Subject resolve_subject(const std::string& key);

/// All combinational catalog subjects with netlists at `width` (4/8/16).
[[nodiscard]] std::vector<std::string> catalog_subject_keys(unsigned width);

/// Searches LUT cells x INIT bits in seeded random order for a flip that
/// observably changes the netlist of `base_key` (random-vector
/// inequivalence), returning the "+flip:<cell>:<bit>" subject key; nullopt
/// when every probed flip is masked (don't-care INIT space).
[[nodiscard]] std::optional<std::string> find_observable_flip(const std::string& base_key,
                                                              std::uint64_t seed);

}  // namespace axmult::check
