// Oracle layer of the differential harness: every way this repo can
// compute a product, pitted against each other on the same operands.
//
// For a combinational Subject the Oracle instantiates every applicable
// backend once and replays operand batches through all of them:
//   model      behavioral mult::Multiplier
//   scalar     fabric::Evaluator (cell-by-cell interpretation)
//   wide1/2    fabric::WideEvaluator<1|2> on the raw netlist (optimize off;
//              wide1 doubles as the toggle-coverage probe)
//   wide4opt/  fabric::WideEvaluator<4|8> on the fabric::optimize()d copy —
//   wide8opt   the default sweep configuration
//   table      nn::MacBackend product table (the GEMM engine's functional
//              view; 8-bit square subjects only)
// Equality is checked pairwise against the first backend; because equality
// is transitive, agreement with the baseline exercises every registered
// backend pair. Sequential designs (pipelined multipliers, MACs) go through
// check_sequential instead: SeqEvaluator vs BitParallelSeqEvaluator lanes,
// cycle-accurately, with the behavioral model shifted by the pipeline
// latency. check_gemm closes the loop on the blocked table-GEMM kernels.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/coverage.hpp"
#include "check/subject.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "nn/mac.hpp"

namespace axmult::check {

enum class BackendId : std::uint8_t {
  kModel,
  kScalar,
  kWide1,
  kWide2,
  kWide4Opt,
  kWide8Opt,
  kTable,
};

[[nodiscard]] const char* backend_name(BackendId id) noexcept;

/// Two backends disagreeing on one operand pair. `lhs` holds the majority
/// value when one exists (the likely-correct side).
struct Mismatch {
  BackendId lhs = BackendId::kModel;
  BackendId rhs = BackendId::kModel;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t lhs_value = 0;
  std::uint64_t rhs_value = 0;
};

class Oracle {
 public:
  /// Builds every backend applicable to `s` (combinational subjects only;
  /// throws std::invalid_argument on sequential netlists). The subject
  /// must outlive the oracle.
  explicit Oracle(const Subject& s);

  [[nodiscard]] const std::vector<BackendId>& backends() const noexcept { return ids_; }

  /// Attaches a toggle-coverage tracker fed from the wide1 (unoptimized)
  /// backend on every subsequent run().
  void set_coverage(ToggleCoverage* coverage) noexcept { coverage_ = coverage; }

  /// Replays (a[i], b[i]) for i < n through every backend; returns the
  /// first disagreement (lowest pair index) or nullopt when all agree.
  [[nodiscard]] std::optional<Mismatch> run(const std::uint64_t* a, const std::uint64_t* b,
                                            std::size_t n);

  /// One pair on one backend — the shrinker/replay path.
  [[nodiscard]] std::uint64_t eval_one(BackendId id, std::uint64_t a, std::uint64_t b);

  /// First net (topological order of the raw netlist) where the scalar and
  /// wide1 evaluations of (a, b) disagree; "" when they agree on every net.
  /// Localizes harness-side divergences net-by-net.
  [[nodiscard]] std::string divergent_net(std::uint64_t a, std::uint64_t b);

  /// Construction-time optimize() statistics of the wide4opt backend.
  [[nodiscard]] const fabric::OptimizeStats& optimize_stats() const noexcept {
    return wide4_->optimize_stats();
  }

 private:
  const Subject* subject_;
  std::vector<BackendId> ids_;
  std::unique_ptr<fabric::Evaluator> scalar_;
  std::unique_ptr<fabric::WideEvaluator<1>> wide1_;
  std::unique_ptr<fabric::WideEvaluator<2>> wide2_;
  std::unique_ptr<fabric::WideEvaluator<4>> wide4_;
  std::unique_ptr<fabric::WideEvaluator<8>> wide8_;
  nn::MacBackendPtr table_;
  ToggleCoverage* coverage_ = nullptr;
  std::vector<std::vector<std::uint64_t>> values_;  ///< per backend, per pair
};

/// Cycle-accurate differential of a sequential netlist over `cycles`
/// cycles of seeded random operands: 64 packed lanes through
/// fabric::BitParallelSeqEvaluator vs `replay_lanes` scalar SeqEvaluator
/// replays; when `model` is non-null its product, delayed by `latency`
/// cycles, must match every lane. Returns a failure description or
/// nullopt. Optionally folds scalar net values into `coverage`.
[[nodiscard]] std::optional<std::string> check_sequential(
    const fabric::Netlist& nl, unsigned a_bits, unsigned b_bits, const mult::Multiplier* model,
    unsigned latency, std::uint64_t seed, unsigned cycles = 48, unsigned replay_lanes = 4,
    ToggleCoverage* coverage = nullptr);

/// Differential check of the blocked table-GEMM path for an 8-bit square
/// subject: gemm_accumulate (blocked/AVX512 kernels) vs the naive table
/// walk on ragged shapes, both operand orders — and vs the exact int64
/// reference when the subject is exact. Returns a failure description.
[[nodiscard]] std::optional<std::string> check_gemm(const Subject& s, std::uint64_t seed);

}  // namespace axmult::check
