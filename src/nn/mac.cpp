#include "nn/mac.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult::nn {

namespace {

/// Exhaustive metrics straight off the product table (the operand space the
/// data path sees — at most 2^16 entries, so this is instant).
error::ErrorMetrics table_metrics(const std::vector<std::uint32_t>& table, unsigned bits) {
  error::ErrorMetrics m;
  const unsigned n = 1u << bits;
  m.samples = static_cast<std::uint64_t>(n) * n;
  unsigned __int128 abs_sum = 0;
  double rel_sum = 0.0;
  long double signed_sum = 0.0L;
  for (unsigned a = 0; a < n; ++a) {
    for (unsigned b = 0; b < n; ++b) {
      const std::uint64_t exact = static_cast<std::uint64_t>(a) * b;
      const std::uint64_t approx = table[(a << bits) | b];
      if (approx == exact) continue;
      const std::uint64_t err = approx > exact ? approx - exact : exact - approx;
      ++m.occurrences;
      abs_sum += err;
      signed_sum += static_cast<long double>(approx) - static_cast<long double>(exact);
      if (exact != 0) rel_sum += static_cast<double>(err) / static_cast<double>(exact);
      if (err > m.max_error) {
        m.max_error = err;
        m.max_error_occurrences = 1;
      } else if (err == m.max_error) {
        ++m.max_error_occurrences;
      }
    }
  }
  const double samples = static_cast<double>(m.samples);
  m.avg_error = static_cast<double>(static_cast<long double>(abs_sum)) / samples;
  m.avg_relative_error = rel_sum / samples;
  m.mean_signed_error = static_cast<double>(signed_sum / samples);
  return m;
}

}  // namespace

MacBackend::MacBackend(std::string name, mult::MultiplierPtr model,
                       std::function<fabric::Netlist()> netlist)
    : name_(std::move(name)), model_(std::move(model)) {
  if (model_->a_bits() != model_->b_bits()) {
    throw std::invalid_argument("MacBackend requires a square multiplier");
  }
  data_bits_ = std::min(8u, model_->a_bits());
  const unsigned n = 1u << data_bits_;
  table_.resize(static_cast<std::size_t>(n) * n);
  for (unsigned a = 0; a < n; ++a) {
    for (unsigned b = 0; b < n; ++b) {
      const std::uint64_t p = model_->multiply(a, b);
      table_[(a << data_bits_) | b] = static_cast<std::uint32_t>(p);
      if (p != static_cast<std::uint64_t>(a) * b) exact_ = false;
    }
  }
  metrics_ = table_metrics(table_, data_bits_);
  if (data_bits_ == 8 &&
      std::all_of(table_.begin(), table_.end(), [](std::uint32_t v) { return v <= 0xFFFFu; })) {
    for (int s = 0; s < 2; ++s) {
      auto& pt = packed_[s];
      pt.p16.resize(table_.size());
      pt.lo.resize(table_.size());
      pt.hi.resize(table_.size());
      for (unsigned a = 0; a < n; ++a) {
        for (unsigned b = 0; b < n; ++b) {
          const std::uint32_t v = s == 0 ? table_[(a << 8) | b] : table_[(b << 8) | a];
          pt.p16[(a << 8) | b] = static_cast<std::uint16_t>(v);
          pt.lo[(a << 8) | b] = static_cast<std::uint8_t>(v & 0xFFu);
          pt.hi[(a << 8) | b] = static_cast<std::uint8_t>(v >> 8);
        }
      }
    }
  }
  if (netlist) {
    const fabric::Netlist nl = netlist();
    const auto area = nl.area();
    cost_.modeled = true;
    cost_.luts = area.luts;
    cost_.carry4 = area.carry4;
    cost_.critical_path_ns = timing::analyze(nl).critical_path_ns;
    const auto pwr = power::estimate(nl);
    cost_.energy_per_mac_au = pwr.energy_au;
    cost_.edp_per_mac_au = pwr.edp_au;
  }
}

namespace {

struct BackendSpec {
  const char* name;
  mult::MultiplierPtr (*model)();
  fabric::Netlist (*netlist)();
};

// Operand swapping is wiring-only, so Cas/Ccs share the Ca/Cc netlists.
const BackendSpec kBackends[] = {
    {"exact", [] { return mult::make_accurate(8); },
     [] { return multgen::make_vivado_speed_netlist(8); }},
    {"ca8", [] { return mult::make_ca(8); }, [] { return multgen::make_ca_netlist(8); }},
    {"cc8", [] { return mult::make_cc(8); }, [] { return multgen::make_cc_netlist(8); }},
    {"cas8", [] { return mult::make_cas(8); }, [] { return multgen::make_ca_netlist(8); }},
    {"ccs8", [] { return mult::make_ccs(8); }, [] { return multgen::make_cc_netlist(8); }},
    {"cb8", [] { return mult::make_cb(8, 4); }, [] { return multgen::make_cb_netlist(8, 4); }},
    {"k8", [] { return mult::make_kulkarni(8); },
     [] { return multgen::make_kulkarni_netlist(8); }},
    {"w8", [] { return mult::make_rehman_w(8); },
     [] { return multgen::make_rehman_netlist(8); }},
    {"trunc8_4", [] { return mult::make_result_truncated(8, 4); },
     [] { return multgen::make_result_truncated_netlist(8, 4); }},
    {"ca16", [] { return mult::make_ca(16); }, [] { return multgen::make_ca_netlist(16); }},
    {"cc16", [] { return mult::make_cc(16); }, [] { return multgen::make_cc_netlist(16); }},
    {"approx4", [] { return mult::make_ca(4); }, [] { return multgen::make_ca_netlist(4); }},
};

}  // namespace

std::vector<std::string> mac_backend_names() {
  std::vector<std::string> names;
  for (const auto& s : kBackends) names.emplace_back(s.name);
  return names;
}

MacBackendPtr make_mac_backend(const std::string& name) {
  for (const auto& s : kBackends) {
    if (name == s.name) {
      return std::make_shared<MacBackend>(s.name, s.model(), s.netlist);
    }
  }
  throw std::out_of_range("unknown MAC backend '" + name + "'");
}

fabric::Netlist mac_backend_netlist(const std::string& name) {
  for (const auto& s : kBackends) {
    if (name == s.name) return s.netlist();
  }
  throw std::out_of_range("unknown MAC backend '" + name + "'");
}

MacBackendPtr shared_mac_backend(const std::string& name) {
  // Entry pointers are stable once inserted (node-based map), so the
  // registry mutex protects only the map itself; the per-entry call_once
  // serializes construction without holding the mutex across the (slow)
  // table build — racing first-touchers of *different* names build in
  // parallel, racing first-touchers of the *same* name get one build.
  struct Entry {
    std::once_flag once;
    MacBackendPtr backend;
  };
  static std::mutex registry_mu;
  static std::map<std::string, Entry>& registry = *new std::map<std::string, Entry>;

  // Unknown names throw here, before touching the registry, so failures
  // never pin a poisoned entry.
  const auto known = [&] {
    for (const auto& s : kBackends) {
      if (name == s.name) return true;
    }
    return false;
  }();
  if (!known) throw std::out_of_range("unknown MAC backend '" + name + "'");

  Entry* entry = nullptr;
  {
    const std::lock_guard<std::mutex> lock(registry_mu);
    entry = &registry[name];
  }
  std::call_once(entry->once, [&] { entry->backend = make_mac_backend(name); });
  return entry->backend;
}

MacBackendPtr make_exact_backend(unsigned data_bits) {
  return std::make_shared<MacBackend>(
      "exact" + std::to_string(data_bits), mult::make_accurate(data_bits),
      [data_bits] { return multgen::make_vivado_speed_netlist(data_bits); });
}

}  // namespace axmult::nn
