// Minimal dense tensors for the quantized inference engine.
//
// Two coupled representations, mirroring the multiplier library's
// behavioral/structural split:
//   * Tensor  — float32, row-major; the calibration / reference form,
//   * QTensor — uint8 (or narrower) with asymmetric scale/zero-point
//     quantization; the form the approximate MAC hardware consumes.
// Layouts are NHWC for images ({N, H, W, C}) and {N, F} for features.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace axmult::nn {

/// Dimension list, outermost first (row-major storage).
using Shape = std::vector<unsigned>;

[[nodiscard]] inline std::size_t shape_elems(const Shape& s) {
  std::size_t n = 1;
  for (const unsigned d : s) n *= d;
  return s.empty() ? 0 : n;
}

/// Asymmetric uniform quantization: real = scale * (q - zero_point).
/// `bits` is the operand width fed to the approximate multipliers, so a
/// network quantized at 8 bits exercises the 8x8 designs and one at 4 bits
/// the paper's elementary 4x4 module directly.
struct QuantParams {
  double scale = 1.0;
  int zero_point = 0;
  unsigned bits = 8;

  [[nodiscard]] int qmax() const noexcept { return (1 << bits) - 1; }

  [[nodiscard]] std::uint8_t quantize(float real) const noexcept;
  [[nodiscard]] float dequantize(unsigned q) const noexcept {
    return static_cast<float>(scale * (static_cast<int>(q) - zero_point));
  }
};

/// Row-major float tensor.
struct Tensor {
  Shape shape;
  std::vector<float> data;

  Tensor() = default;
  explicit Tensor(Shape s) : shape(std::move(s)), data(shape_elems(shape), 0.0f) {}
  Tensor(Shape s, std::vector<float> d) : shape(std::move(s)), data(std::move(d)) {}

  [[nodiscard]] std::size_t elems() const noexcept { return data.size(); }
};

/// Row-major quantized tensor. Values occupy the low `q.bits` bits of each
/// byte — exactly the operand a `nn::MacBackend` product table indexes.
struct QTensor {
  Shape shape;
  std::vector<std::uint8_t> data;
  QuantParams q;

  [[nodiscard]] std::size_t elems() const noexcept { return data.size(); }
};

}  // namespace axmult::nn
