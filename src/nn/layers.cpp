#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/quantize.hpp"
#include "nn/tileplan.hpp"

namespace axmult::nn {

namespace {

[[noreturn]] void shape_error(const std::string& layer, const char* what) {
  throw std::invalid_argument(layer + ": " + what);
}

std::size_t trailing_elems(const Shape& s) {
  std::size_t n = 1;
  for (std::size_t i = 1; i < s.size(); ++i) n *= s[i];
  return n;
}

/// Freezes the requantization state shared by Dense and Conv2D: quantizes
/// the float weights per-tensor, precomputes per-output-channel weight sums
/// and the bias at accumulator scale.
QTensor freeze_mac_state(const Tensor& w, const std::vector<float>& bias, std::size_t depth,
                         std::size_t out_channels, const QuantParams& in_q, unsigned bits,
                         RequantState& rq) {
  QTensor wq = Quantizer::quantize(w, Quantizer::fit(w, bits));
  rq.in_q = in_q;
  rq.w_q = wq.q;
  rq.depth = depth;
  rq.col_sums.assign(out_channels, 0);
  // Weights are stored {depth, out_channels} row-major (Dense directly,
  // Conv2D after its {KH,KW,C,M} layout collapses to {KH*KW*C, M}).
  for (std::size_t k = 0; k < depth; ++k) {
    for (std::size_t j = 0; j < out_channels; ++j) {
      rq.col_sums[j] += wq.data[k * out_channels + j];
    }
  }
  const double bias_scale = in_q.scale * wq.q.scale;
  rq.bias_q.assign(out_channels, 0);
  for (std::size_t j = 0; j < out_channels; ++j) {
    rq.bias_q[j] = std::llround(static_cast<double>(bias[j]) / bias_scale);
  }
  return wq;
}

/// Applies zero-point corrections, bias and the scale conversion to the
/// raw-product accumulators, producing output bytes:
///   real = s_in*s_w * (acc - za*col_sum - zw*row_sum + K*za*zw + bias_q)
void requantize_rows(const RequantState& rq, const std::uint8_t* a_rows,
                     const std::int64_t* acc, std::size_t rows, std::size_t cols,
                     std::uint8_t* out) {
  const std::int64_t za = rq.in_q.zero_point;
  const std::int64_t zw = rq.w_q.zero_point;
  const std::int64_t kzz = static_cast<std::int64_t>(rq.depth) * za * zw;
  const double multiplier = rq.in_q.scale * rq.w_q.scale / rq.out_q.scale;
  const long out_max = rq.out_q.qmax();
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t row_sum = 0;
    const std::uint8_t* arow = a_rows + i * rq.depth;
    for (std::size_t k = 0; k < rq.depth; ++k) row_sum += arow[k];
    for (std::size_t j = 0; j < cols; ++j) {
      const std::int64_t corrected =
          acc[i * cols + j] - za * rq.col_sums[j] - zw * row_sum + kzz + rq.bias_q[j];
      const long q = std::llround(multiplier * static_cast<double>(corrected)) +
                     rq.out_q.zero_point;
      out[i * cols + j] = static_cast<std::uint8_t>(std::clamp(q, 0L, out_max));
    }
  }
}

}  // namespace

QTensor Layer::forward_planned(const QTensor& in, TileScheduler& sched,
                               unsigned threads) const {
  // Non-MAC layers ignore the backend; MAC layers override this to run
  // their GEMM through the scheduler panel by panel.
  return forward(in, sched.top_backend(), false, threads);
}

// ---- Dense ----------------------------------------------------------------

Dense::Dense(std::string name, unsigned in_features, unsigned out_features)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      w_({in_features, out_features}),
      bias_(out_features, 0.0f) {}

void Dense::set_weights(Tensor w, std::vector<float> bias) {
  if (w.elems() != static_cast<std::size_t>(in_features_) * out_features_ ||
      bias.size() != out_features_) {
    shape_error(name(), "weight/bias size mismatch");
  }
  w_ = std::move(w);
  w_.shape = {in_features_, out_features_};
  bias_ = std::move(bias);
}

Shape Dense::out_shape(const Shape& in) const {
  if (in.empty() || trailing_elems(in) != in_features_) {
    shape_error(name(), "input features mismatch");
  }
  return {in[0], out_features_};
}

std::uint64_t Dense::mac_count(const Shape& in) const {
  return static_cast<std::uint64_t>(in.empty() ? 0 : in[0]) * in_features_ * out_features_;
}

GemmShape Dense::gemm_shape(const Shape& in) const {
  (void)out_shape(in);  // validate
  return {in[0], in_features_, out_features_};
}

Tensor Dense::forward_float(const Tensor& in) const {
  const Shape out_s = out_shape(in.shape);
  Tensor out(out_s);
  const std::size_t batch = in.shape[0];
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out_features_; ++j) {
      double sum = bias_[j];
      for (std::size_t k = 0; k < in_features_; ++k) {
        sum += static_cast<double>(in.data[i * in_features_ + k]) *
               w_.data[k * out_features_ + j];
      }
      out.data[i * out_features_ + j] = static_cast<float>(sum);
    }
  }
  return out;
}

QuantParams Dense::calibrate(const Tensor& in, const QuantParams& in_q, unsigned bits,
                             Tensor& out) {
  wq_ = freeze_mac_state(w_, bias_, in_features_, out_features_, in_q, bits, rq_);
  out = forward_float(in);
  rq_.out_q = Quantizer::fit(out, bits);
  return rq_.out_q;
}

QTensor Dense::forward(const QTensor& in, const MacBackend& mac, bool swap,
                       unsigned threads) const {
  const Shape out_s = out_shape(in.shape);
  const std::size_t batch = in.shape[0];
  std::vector<std::int64_t> acc(batch * out_features_);
  gemm_accumulate(mac, swap, in.data.data(), wq_.data.data(), acc.data(), batch, in_features_,
                  out_features_, threads);
  QTensor out;
  out.shape = out_s;
  out.q = rq_.out_q;
  out.data.resize(batch * out_features_);
  requantize_rows(rq_, in.data.data(), acc.data(), batch, out_features_, out.data.data());
  return out;
}

QTensor Dense::forward_planned(const QTensor& in, TileScheduler& sched,
                               unsigned threads) const {
  const Shape out_s = out_shape(in.shape);
  const std::size_t batch = in.shape[0];
  std::vector<std::int64_t> acc(batch * out_features_);
  sched.begin_gemm(name(), batch, in_features_, out_features_, &rq_);
  gemm_accumulate_scheduled(sched, in.data.data(), wq_.data.data(), acc.data(), batch,
                            in_features_, out_features_, threads);
  QTensor out;
  out.shape = out_s;
  out.q = rq_.out_q;
  out.data.resize(batch * out_features_);
  requantize_rows(rq_, in.data.data(), acc.data(), batch, out_features_, out.data.data());
  return out;
}

void Dense::export_weights(TensorMap& out) const {
  out[name() + ".weight"] = w_;
  out[name() + ".bias"] = Tensor({out_features_}, std::vector<float>(bias_));
}

void Dense::import_weights(const TensorMap& in) {
  set_weights(in.at(name() + ".weight"), in.at(name() + ".bias").data);
}

// ---- Conv2D ---------------------------------------------------------------

Conv2D::Conv2D(std::string name, unsigned kernel_h, unsigned kernel_w, unsigned in_channels,
               unsigned out_channels, unsigned stride, unsigned pad)
    : Layer(std::move(name)),
      kh_(kernel_h),
      kw_(kernel_w),
      in_c_(in_channels),
      out_c_(out_channels),
      stride_(stride),
      pad_(pad),
      w_({kernel_h, kernel_w, in_channels, out_channels}),
      bias_(out_channels, 0.0f) {
  if (stride_ == 0) shape_error(this->name(), "stride must be nonzero");
}

void Conv2D::set_weights(Tensor w, std::vector<float> bias) {
  if (w.elems() != static_cast<std::size_t>(kh_) * kw_ * in_c_ * out_c_ ||
      bias.size() != out_c_) {
    shape_error(name(), "weight/bias size mismatch");
  }
  w_ = std::move(w);
  w_.shape = {kh_, kw_, in_c_, out_c_};
  bias_ = std::move(bias);
}

Shape Conv2D::out_shape(const Shape& in) const {
  if (in.size() != 4 || in[3] != in_c_) shape_error(name(), "expects NHWC input");
  if (in[1] + 2 * pad_ < kh_ || in[2] + 2 * pad_ < kw_) {
    shape_error(name(), "kernel larger than padded input");
  }
  const unsigned oh = (in[1] + 2 * pad_ - kh_) / stride_ + 1;
  const unsigned ow = (in[2] + 2 * pad_ - kw_) / stride_ + 1;
  return {in[0], oh, ow, out_c_};
}

std::uint64_t Conv2D::mac_count(const Shape& in) const {
  const Shape o = out_shape(in);
  return static_cast<std::uint64_t>(o[0]) * o[1] * o[2] * out_c_ * kh_ * kw_ * in_c_;
}

GemmShape Conv2D::gemm_shape(const Shape& in) const {
  const Shape o = out_shape(in);
  return {static_cast<std::size_t>(o[0]) * o[1] * o[2],
          static_cast<std::size_t>(kh_) * kw_ * in_c_, out_c_};
}

Tensor Conv2D::forward_float(const Tensor& in) const {
  const Shape o = out_shape(in.shape);
  Tensor out(o);
  const unsigned h = in.shape[1], w = in.shape[2];
  std::size_t idx = 0;
  for (unsigned n = 0; n < o[0]; ++n) {
    for (unsigned oy = 0; oy < o[1]; ++oy) {
      for (unsigned ox = 0; ox < o[2]; ++ox) {
        for (unsigned m = 0; m < out_c_; ++m) {
          double sum = bias_[m];
          for (unsigned ky = 0; ky < kh_; ++ky) {
            for (unsigned kx = 0; kx < kw_; ++kx) {
              const int iy = static_cast<int>(oy * stride_ + ky) - static_cast<int>(pad_);
              const int ix = static_cast<int>(ox * stride_ + kx) - static_cast<int>(pad_);
              if (iy < 0 || iy >= static_cast<int>(h) || ix < 0 || ix >= static_cast<int>(w)) {
                continue;  // zero padding
              }
              for (unsigned c = 0; c < in_c_; ++c) {
                sum += static_cast<double>(
                           in.data[((static_cast<std::size_t>(n) * h + iy) * w + ix) * in_c_ +
                                   c]) *
                       w_.data[((static_cast<std::size_t>(ky) * kw_ + kx) * in_c_ + c) *
                                   out_c_ +
                               m];
              }
            }
          }
          out.data[idx++] = static_cast<float>(sum);
        }
      }
    }
  }
  return out;
}

QuantParams Conv2D::calibrate(const Tensor& in, const QuantParams& in_q, unsigned bits,
                              Tensor& out) {
  wq_ = freeze_mac_state(w_, bias_, static_cast<std::size_t>(kh_) * kw_ * in_c_, out_c_, in_q,
                         bits, rq_);
  out = forward_float(in);
  rq_.out_q = Quantizer::fit(out, bits);
  return rq_.out_q;
}

std::vector<std::uint8_t> Conv2D::im2col(const QTensor& in, const Shape& o) const {
  const unsigned h = in.shape[1], w = in.shape[2];
  const std::size_t rows = static_cast<std::size_t>(o[0]) * o[1] * o[2];
  const std::size_t depth = static_cast<std::size_t>(kh_) * kw_ * in_c_;
  // im2col: out-of-bounds taps read the input zero-point, which the
  // zero-point correction cancels exactly (true zero padding).
  std::vector<std::uint8_t> patches(rows * depth);
  const std::uint8_t zp = static_cast<std::uint8_t>(in.q.zero_point);
  std::size_t r = 0;
  for (unsigned n = 0; n < o[0]; ++n) {
    for (unsigned oy = 0; oy < o[1]; ++oy) {
      for (unsigned ox = 0; ox < o[2]; ++ox, ++r) {
        std::uint8_t* row = patches.data() + r * depth;
        std::size_t t = 0;
        for (unsigned ky = 0; ky < kh_; ++ky) {
          for (unsigned kx = 0; kx < kw_; ++kx) {
            const int iy = static_cast<int>(oy * stride_ + ky) - static_cast<int>(pad_);
            const int ix = static_cast<int>(ox * stride_ + kx) - static_cast<int>(pad_);
            const bool inside =
                iy >= 0 && iy < static_cast<int>(h) && ix >= 0 && ix < static_cast<int>(w);
            for (unsigned c = 0; c < in_c_; ++c, ++t) {
              row[t] = inside
                           ? in.data[((static_cast<std::size_t>(n) * h + iy) * w + ix) *
                                         in_c_ +
                                     c]
                           : zp;
            }
          }
        }
      }
    }
  }
  return patches;
}

QTensor Conv2D::forward(const QTensor& in, const MacBackend& mac, bool swap,
                        unsigned threads) const {
  const Shape o = out_shape(in.shape);
  const std::size_t rows = static_cast<std::size_t>(o[0]) * o[1] * o[2];
  const std::size_t depth = static_cast<std::size_t>(kh_) * kw_ * in_c_;
  const std::vector<std::uint8_t> patches = im2col(in, o);
  std::vector<std::int64_t> acc(rows * out_c_);
  gemm_accumulate(mac, swap, patches.data(), wq_.data.data(), acc.data(), rows, depth, out_c_,
                  threads);
  QTensor out;
  out.shape = o;
  out.q = rq_.out_q;
  out.data.resize(rows * out_c_);
  requantize_rows(rq_, patches.data(), acc.data(), rows, out_c_, out.data.data());
  return out;
}

QTensor Conv2D::forward_planned(const QTensor& in, TileScheduler& sched,
                                unsigned threads) const {
  const Shape o = out_shape(in.shape);
  const std::size_t rows = static_cast<std::size_t>(o[0]) * o[1] * o[2];
  const std::size_t depth = static_cast<std::size_t>(kh_) * kw_ * in_c_;
  const std::vector<std::uint8_t> patches = im2col(in, o);
  std::vector<std::int64_t> acc(rows * out_c_);
  sched.begin_gemm(name(), rows, depth, out_c_, &rq_);
  gemm_accumulate_scheduled(sched, patches.data(), wq_.data.data(), acc.data(), rows, depth,
                            out_c_, threads);
  QTensor out;
  out.shape = o;
  out.q = rq_.out_q;
  out.data.resize(rows * out_c_);
  requantize_rows(rq_, patches.data(), acc.data(), rows, out_c_, out.data.data());
  return out;
}

void Conv2D::export_weights(TensorMap& out) const {
  out[name() + ".weight"] = w_;
  out[name() + ".bias"] = Tensor({out_c_}, std::vector<float>(bias_));
}

void Conv2D::import_weights(const TensorMap& in) {
  set_weights(in.at(name() + ".weight"), in.at(name() + ".bias").data);
}

// ---- ReLU -----------------------------------------------------------------

Tensor ReLU::forward_float(const Tensor& in) const {
  Tensor out = in;
  for (float& v : out.data) v = std::max(v, 0.0f);
  return out;
}

QTensor ReLU::forward(const QTensor& in, const MacBackend& mac, bool swap,
                      unsigned threads) const {
  (void)mac;
  (void)swap;
  (void)threads;
  QTensor out = in;
  const std::uint8_t zp = static_cast<std::uint8_t>(in.q.zero_point);
  for (std::uint8_t& v : out.data) v = std::max(v, zp);
  return out;
}

// ---- MaxPool2D ------------------------------------------------------------

MaxPool2D::MaxPool2D(std::string name, unsigned pool, unsigned stride)
    : Layer(std::move(name)), pool_(pool), stride_(stride == 0 ? pool : stride) {
  if (pool_ == 0) shape_error(this->name(), "pool must be nonzero");
}

Shape MaxPool2D::out_shape(const Shape& in) const {
  if (in.size() != 4 || in[1] < pool_ || in[2] < pool_) {
    shape_error(name(), "expects NHWC input at least one window large");
  }
  return {in[0], (in[1] - pool_) / stride_ + 1, (in[2] - pool_) / stride_ + 1, in[3]};
}

namespace {

template <typename T>
void maxpool_nhwc(const std::vector<T>& in, const Shape& in_s, unsigned pool, unsigned stride,
                  const Shape& out_s, std::vector<T>& out) {
  const unsigned h = in_s[1], w = in_s[2], c = in_s[3];
  std::size_t idx = 0;
  for (unsigned n = 0; n < out_s[0]; ++n) {
    for (unsigned oy = 0; oy < out_s[1]; ++oy) {
      for (unsigned ox = 0; ox < out_s[2]; ++ox) {
        for (unsigned ch = 0; ch < c; ++ch) {
          T best = in[((static_cast<std::size_t>(n) * h + oy * stride) * w + ox * stride) * c +
                      ch];
          for (unsigned ky = 0; ky < pool; ++ky) {
            for (unsigned kx = 0; kx < pool; ++kx) {
              best = std::max(
                  best, in[((static_cast<std::size_t>(n) * h + oy * stride + ky) * w +
                            ox * stride + kx) *
                               c +
                           ch]);
            }
          }
          out[idx++] = best;
        }
      }
    }
  }
}

}  // namespace

Tensor MaxPool2D::forward_float(const Tensor& in) const {
  const Shape o = out_shape(in.shape);
  Tensor out(o);
  maxpool_nhwc(in.data, in.shape, pool_, stride_, o, out.data);
  return out;
}

QTensor MaxPool2D::forward(const QTensor& in, const MacBackend& mac, bool swap,
                           unsigned threads) const {
  (void)mac;
  (void)swap;
  (void)threads;
  const Shape o = out_shape(in.shape);
  QTensor out;
  out.shape = o;
  out.q = in.q;
  out.data.resize(shape_elems(o));
  maxpool_nhwc(in.data, in.shape, pool_, stride_, o, out.data);
  return out;
}

// ---- Softmax --------------------------------------------------------------

Tensor Softmax::forward_float(const Tensor& in) const {
  if (in.shape.size() != 2) shape_error(name(), "expects {N, F} input");
  Tensor out = in;
  const std::size_t f = in.shape[1];
  for (std::size_t i = 0; i < in.shape[0]; ++i) {
    float* row = out.data.data() + i * f;
    const float mx = *std::max_element(row, row + f);
    double sum = 0.0;
    for (std::size_t j = 0; j < f; ++j) sum += std::exp(static_cast<double>(row[j] - mx));
    for (std::size_t j = 0; j < f; ++j) {
      row[j] = static_cast<float>(std::exp(static_cast<double>(row[j] - mx)) / sum);
    }
  }
  return out;
}

QuantParams Softmax::calibrate(const Tensor& in, const QuantParams& in_q, unsigned bits,
                               Tensor& out) {
  (void)in_q;
  out = forward_float(in);
  out_q_.bits = bits;
  out_q_.zero_point = 0;
  out_q_.scale = 1.0 / out_q_.qmax();  // probabilities span [0, 1] exactly
  return out_q_;
}

QTensor Softmax::forward(const QTensor& in, const MacBackend& mac, bool swap,
                         unsigned threads) const {
  (void)mac;
  (void)swap;
  (void)threads;
  Tensor logits = Quantizer::dequantize(in);
  const Tensor probs = forward_float(logits);
  return Quantizer::quantize(probs, out_q_);
}

}  // namespace axmult::nn
