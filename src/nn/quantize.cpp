#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace axmult::nn {

std::uint8_t QuantParams::quantize(float real) const noexcept {
  const long q = std::lround(static_cast<double>(real) / scale) + zero_point;
  return static_cast<std::uint8_t>(std::clamp<long>(q, 0, qmax()));
}

QuantParams Quantizer::fit(float lo, float hi, unsigned bits) {
  QuantParams q;
  q.bits = bits;
  // Zero must be inside the represented range (and exactly representable).
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  if (hi <= lo) {
    q.scale = 1.0;
    q.zero_point = 0;
    return q;
  }
  q.scale = (static_cast<double>(hi) - static_cast<double>(lo)) / q.qmax();
  q.zero_point = static_cast<int>(
      std::clamp<long>(std::lround(-static_cast<double>(lo) / q.scale), 0, q.qmax()));
  return q;
}

QuantParams Quantizer::fit(const Tensor& t, unsigned bits) {
  float lo = 0.0f;
  float hi = 0.0f;
  for (const float v : t.data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return fit(lo, hi, bits);
}

QTensor Quantizer::quantize(const Tensor& t, const QuantParams& q) {
  QTensor out;
  out.shape = t.shape;
  out.q = q;
  out.data.resize(t.data.size());
  for (std::size_t i = 0; i < t.data.size(); ++i) out.data[i] = q.quantize(t.data[i]);
  return out;
}

Tensor Quantizer::dequantize(const QTensor& t) {
  Tensor out;
  out.shape = t.shape;
  out.data.resize(t.data.size());
  for (std::size_t i = 0; i < t.data.size(); ++i) out.data[i] = t.q.dequantize(t.data[i]);
  return out;
}

}  // namespace axmult::nn
