// Range-based quantizer (TFLite-style asymmetric uint8 scheme).
//
// Scale and zero-point are fitted from observed min/max so that zero is
// exactly representable (required for zero-cost padding and ReLU clamps:
// a padded operand equal to the zero-point contributes exactly nothing
// after the zero-point correction, even under an approximate multiplier).
#pragma once

#include "nn/tensor.hpp"

namespace axmult::nn {

class Quantizer {
 public:
  /// Fits scale/zero-point covering [lo, hi] (widened to include 0) onto
  /// [0, 2^bits - 1]. Degenerate ranges get scale 1.
  [[nodiscard]] static QuantParams fit(float lo, float hi, unsigned bits);

  /// Fit over a tensor's observed values.
  [[nodiscard]] static QuantParams fit(const Tensor& t, unsigned bits);

  [[nodiscard]] static QTensor quantize(const Tensor& t, const QuantParams& q);
  [[nodiscard]] static Tensor dequantize(const QTensor& t);
};

}  // namespace axmult::nn
