// Flat binary weight container (".axnn"): named float32 tensors.
//
// An npz-like single-file format kept deliberately simple (no compression,
// no dtype zoo) so weights survive round trips between tools without any
// external dependency:
//
//   bytes 0..7   magic "AXNN0001"
//   u32          tensor count
//   per tensor:  u32 name length, name bytes,
//                u32 rank, u32 dims[rank],
//                f32 data[prod(dims)]           (little-endian, row-major)
//
// Multi-byte values are written in the host's native byte order; the
// format targets same-architecture tool pipelines (this repo's CLIs), not
// archival interchange.
#pragma once

#include <string>

#include "nn/layers.hpp"

namespace axmult::nn {

/// Writes the map to `path`; throws std::runtime_error on I/O failure.
void save_tensors(const std::string& path, const TensorMap& tensors);

/// Reads a container written by save_tensors; throws std::runtime_error on
/// I/O failure or malformed content.
[[nodiscard]] TensorMap load_tensors(const std::string& path);

}  // namespace axmult::nn
