#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.hpp"

namespace axmult::nn {

namespace {

constexpr unsigned kGlyphW = 5;
constexpr unsigned kGlyphH = 7;

// Classic 5x7 digit font; '#' marks lit pixels.
constexpr const char* kGlyphs[kDigitClasses][kGlyphH] = {
    {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "},
    {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
    {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},
    {"#####", "   # ", "  #  ", "   # ", "    #", "#   #", " ### "},
    {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},
    {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},
    {"  ## ", " #   ", "#    ", "#### ", "#   #", "#   #", " ### "},
    {"#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "},
    {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},
    {" ### ", "#   #", "#   #", " ####", "    #", "   # ", " ##  "},
};

/// Renders one glyph at 2x scale into a 16x16 canvas, shifted by (dx, dy)
/// from the centered position, at the given amplitude.
void render_digit(int digit, int dx, int dy, float amplitude, float* canvas) {
  std::fill(canvas, canvas + kDigitImage * kDigitImage, 0.0f);
  const int x0 = (kDigitImage - 2 * kGlyphW) / 2 + dx;  // centered 10x14 glyph
  const int y0 = (kDigitImage - 2 * kGlyphH) / 2 + dy;
  for (unsigned gy = 0; gy < kGlyphH; ++gy) {
    for (unsigned gx = 0; gx < kGlyphW; ++gx) {
      if (kGlyphs[digit][gy][gx] != '#') continue;
      for (int sy = 0; sy < 2; ++sy) {
        for (int sx = 0; sx < 2; ++sx) {
          const int y = y0 + static_cast<int>(2 * gy) + sy;
          const int x = x0 + static_cast<int>(2 * gx) + sx;
          if (y >= 0 && y < static_cast<int>(kDigitImage) && x >= 0 &&
              x < static_cast<int>(kDigitImage)) {
            canvas[y * kDigitImage + x] = amplitude;
          }
        }
      }
    }
  }
}

/// One jittered sample: shift within +-1 px, amplitude in [0.75, 1.0],
/// additive uniform noise +-0.1, clamped to [0, 1]. Jitter is sized so a
/// calibrated nearest-centroid classifier stays clearly above 90% top-1
/// with the exact backend while approximate backends still measurably
/// erode it.
void render_sample(Xoshiro256& rng, int digit, float* canvas) {
  const int dx = static_cast<int>(rng.below(3)) - 1;
  const int dy = static_cast<int>(rng.below(3)) - 1;
  const float amplitude = 0.75f + 0.25f * static_cast<float>(rng.uniform01());
  render_digit(digit, dx, dy, amplitude, canvas);
  for (unsigned i = 0; i < kDigitImage * kDigitImage; ++i) {
    const float noise = 0.2f * (static_cast<float>(rng.uniform01()) - 0.5f);
    canvas[i] = std::clamp(canvas[i] + noise, 0.0f, 1.0f);
  }
}

}  // namespace

Dataset make_digits(std::size_t n, std::uint64_t seed) {
  Dataset ds;
  ds.images = Tensor({static_cast<unsigned>(n), kDigitImage, kDigitImage, 1});
  ds.labels.resize(n);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int digit = static_cast<int>(rng.below(kDigitClasses));
    ds.labels[i] = digit;
    render_sample(rng, digit, ds.images.data.data() + i * kDigitImage * kDigitImage);
  }
  return ds;
}

Tensor digit_templates() {
  Tensor t({kDigitClasses, kDigitImage, kDigitImage, 1});
  for (unsigned d = 0; d < kDigitClasses; ++d) {
    render_digit(static_cast<int>(d), 0, 0, 1.0f,
                 t.data.data() + static_cast<std::size_t>(d) * kDigitImage * kDigitImage);
  }
  return t;
}

Sequential make_digits_network() {
  Sequential net;

  // Fixed 3x3 filters: identity, box blur, and the two Sobel gradients —
  // generic local features, deliberately not tuned to the glyph set.
  auto conv = std::make_unique<Conv2D>("conv1", 3, 3, 1, 4, /*stride=*/1, /*pad=*/1);
  Tensor cw({3, 3, 1, 4});
  const float id3[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  const float box[9] = {1, 1, 1, 1, 1, 1, 1, 1, 1};
  const float sobel_x[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const float sobel_y[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  for (unsigned k = 0; k < 9; ++k) {
    cw.data[k * 4 + 0] = id3[k];
    cw.data[k * 4 + 1] = box[k] / 9.0f;
    cw.data[k * 4 + 2] = sobel_x[k] / 4.0f;
    cw.data[k * 4 + 3] = sobel_y[k] / 4.0f;
  }
  conv->set_weights(std::move(cw), std::vector<float>(4, 0.0f));

  net.add(std::move(conv));
  net.add(std::make_unique<ReLU>("relu1"));
  net.add(std::make_unique<MaxPool2D>("pool1", 2));

  // Nearest-centroid classifier in feature space: run jittered glyph
  // samples through the float feature extractor and average per class.
  // argmax_j (c_j . x - |c_j|^2 / 2) == argmin_j |x - c_j|^2.
  constexpr unsigned kPerClass = 64;
  constexpr unsigned kFeatures = (kDigitImage / 2) * (kDigitImage / 2) * 4;
  Xoshiro256 rng(0xd161757u);
  Tensor batch({kDigitClasses * kPerClass, kDigitImage, kDigitImage, 1});
  for (unsigned d = 0; d < kDigitClasses; ++d) {
    for (unsigned s = 0; s < kPerClass; ++s) {
      render_sample(rng, static_cast<int>(d),
                    batch.data.data() + (static_cast<std::size_t>(d) * kPerClass + s) *
                                            kDigitImage * kDigitImage);
    }
  }
  const Tensor features = net.run_float(batch);  // {10 * kPerClass, kFeatures}
  Tensor dw({kFeatures, kDigitClasses});
  std::vector<float> bias(kDigitClasses, 0.0f);
  for (unsigned d = 0; d < kDigitClasses; ++d) {
    double norm2 = 0.0;
    for (unsigned f = 0; f < kFeatures; ++f) {
      double centroid = 0.0;
      for (unsigned s = 0; s < kPerClass; ++s) {
        centroid += features.data[(static_cast<std::size_t>(d) * kPerClass + s) * kFeatures + f];
      }
      centroid /= kPerClass;
      dw.data[static_cast<std::size_t>(f) * kDigitClasses + d] = static_cast<float>(centroid);
      norm2 += centroid * centroid;
    }
    bias[d] = static_cast<float>(-0.5 * norm2);
  }
  auto dense = std::make_unique<Dense>("dense1", kFeatures, kDigitClasses);
  dense->set_weights(std::move(dw), std::move(bias));
  net.add(std::move(dense));
  net.add(std::make_unique<Softmax>("softmax"));
  return net;
}

}  // namespace axmult::nn
