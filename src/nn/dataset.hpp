// Bundled synthetic MNIST-like workload: procedurally generated 16x16
// grayscale digit images (glyph templates + random shift, amplitude jitter
// and noise, all from the repo's deterministic PRNG) and a train-free
// classifier network over them.
//
// The network mirrors the paper's accelerator framing (Section 6 / SUSAN
// case study): a fixed-filter convolutional feature extractor followed by
// a nearest-centroid classifier whose Dense weights are *computed* from
// jittered glyph templates — no training loop, no external data, yet high
// top-1 accuracy with the exact backend, leaving real headroom for the
// approximate backends to erode.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"
#include "nn/tensor.hpp"

namespace axmult::nn {

inline constexpr unsigned kDigitImage = 16;   ///< image height == width
inline constexpr unsigned kDigitClasses = 10;

struct Dataset {
  Tensor images;  ///< {N, 16, 16, 1}, values in [0, 1]
  std::vector<int> labels;
};

/// `n` jittered digit samples (uniform random class per sample).
[[nodiscard]] Dataset make_digits(std::size_t n, std::uint64_t seed = 1);

/// The ten clean glyph templates, one image per class ({10, 16, 16, 1}).
[[nodiscard]] Tensor digit_templates();

/// Builds the demo classifier (conv 3x3x4 fixed filters -> ReLU -> maxpool
/// 2x2 -> dense 256x10 centroid matcher -> softmax) with float weights
/// set. Callers must calibrate() it (typically on make_digits output)
/// before quantized inference.
[[nodiscard]] Sequential make_digits_network();

}  // namespace axmult::nn
