// Quantized integer GEMM over a pluggable MAC backend.
//
// This is the engine's single hot loop: Dense consumes it directly and
// Conv2D reaches it through im2col. Raw uint8 x uint8 products go through
// the backend's product table (i.e. through the approximate multiplier);
// everything around them — zero-point corrections, bias, requantization —
// is exact arithmetic, matching how an accelerator would instantiate
// approximate multipliers only in the MAC array.
//
// Rows are sharded across worker threads with common/parallel_for (chunk
// size is thread-count independent and every output cell is written by
// exactly one thread, so results are bit-identical for any thread count,
// AXMULT_THREADS included).
#pragma once

#include <cstddef>
#include <cstdint>

#include "nn/mac.hpp"
#include "nn/tileplan.hpp"

namespace axmult::nn {

/// acc[i*n + j] = sum_k mac(a[i*k_dim + kk], b[kk*n + j]) for the m x k_dim
/// lhs and k_dim x n rhs. `swap_operands` dispatches mul(b, a) instead of
/// mul(a, b) — the paper's Cas/Ccs trick at layer granularity.
/// Accumulation is int64 (no saturation), so the exact backend reproduces
/// the reference integer GEMM bit-for-bit.
///
/// When the backend carries packed tables (every 8-bit design), the inner
/// loop runs cache-blocked u16-table kernels — an AVX512-VBMI in-register
/// lookup where available, a 4-row-unrolled u32-tile kernel otherwise —
/// producing the exact same int64 results as the naive table walk.
void gemm_accumulate(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
                     const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                     std::size_t k_dim, std::size_t n, unsigned threads = 0);

/// Tile-granular form of gemm_accumulate: each row panel of the output
/// runs through its own backend/swap pair. `gemm_accumulate` is the
/// single-tile special case, so every tile keeps the blocked/AVX512 fast
/// paths and the blocked-vs-naive bit-match contract. Tiles must be
/// disjoint, ascending and within [0, m) (throws std::invalid_argument
/// otherwise); uncovered rows are left untouched.
void gemm_accumulate_tiled(const TilePlan& plan, const std::uint8_t* a, const std::uint8_t* b,
                           std::int64_t* acc, std::size_t m, std::size_t k_dim, std::size_t n,
                           unsigned threads = 0);

/// Online form: asks `sched` for each panel's backend in row order on the
/// calling thread, and lets it inspect the freshly computed accumulators
/// (observe may demand a recompute after escalating). The caller must
/// invoke sched.begin_gemm(...) first. Deterministic at any thread count:
/// the decide/observe sequence never depends on worker scheduling.
void gemm_accumulate_scheduled(TileScheduler& sched, const std::uint8_t* a,
                               const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                               std::size_t k_dim, std::size_t n, unsigned threads = 0);

/// The PR-2 kernel — one u32 table load per MAC, no blocking — kept as the
/// baseline the benches measure the blocked path against.
void gemm_accumulate_naive(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
                           const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                           std::size_t k_dim, std::size_t n, unsigned threads = 0);

/// Compile-time selected blocked inner kernel ("avx512-vbmi" or
/// "portable-blocked4"); the naive path is used for backends without
/// packed tables regardless.
[[nodiscard]] const char* gemm_kernel_name() noexcept;

/// Scalar int64 reference: acc[i*n + j] = sum_k a[...] * b[...] (exact).
void gemm_reference(const std::uint8_t* a, const std::uint8_t* b, std::int64_t* acc,
                    std::size_t m, std::size_t k_dim, std::size_t n);

}  // namespace axmult::nn
