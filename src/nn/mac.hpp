// Pluggable multiply-accumulate backends for the inference engine.
//
// A MacBackend couples the two forms every library design has:
//   * functionally, a precomputed product table over the full operand space
//     (256x256 for 8-bit data), built once from the behavioral model, so
//     the inference hot loop is a single indexed load per MAC regardless of
//     how complex the underlying multiplier is;
//   * physically, the structural netlist rolled up through the timing/ STA
//     and power/ toggle models into per-MAC-unit LUTs, critical path and
//     energy, which the network report aggregates into per-inference EDP.
//
// Operand-swap (the paper's Cas/Ccs trick, Section 6) is a per-use-site
// flag: swapped dispatch indexes table[b][a], which is free in hardware
// (pure wiring) and therefore carries the same MacCost.
//
// Data wider than 8 bits per operand is out of scope (the table would not
// fit); 16x16 multipliers are still usable as backends for 8-bit data —
// the accelerator-with-wide-multipliers deployment — because the table
// only ever indexes the low 8 bits of each operand port.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "error/metrics.hpp"
#include "fabric/netlist.hpp"
#include "mult/multiplier.hpp"

namespace axmult::nn {

/// Implementation cost of one MAC unit (multiplier instance) under the
/// default Virtex-7 delay/power models. `modeled` is false for backends
/// without a structural netlist (cost fields stay zero).
struct MacCost {
  bool modeled = false;
  std::uint64_t luts = 0;
  std::uint64_t carry4 = 0;
  double critical_path_ns = 0.0;
  double energy_per_mac_au = 0.0;  ///< dynamic energy per operation (a.u.)
  double edp_per_mac_au = 0.0;     ///< energy x critical path
};

class MacBackend {
 public:
  /// `model` must be square (a_bits == b_bits) and at most 8x8 wide on
  /// each port... of *data*: wider multipliers are accepted and tabulated
  /// over the low 8 bits of each operand. `netlist` may be empty.
  MacBackend(std::string name, mult::MultiplierPtr model,
             std::function<fabric::Netlist()> netlist = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Operand width of the *data* path (table index width per port).
  [[nodiscard]] unsigned data_bits() const noexcept { return data_bits_; }
  /// True when the table equals the exact product everywhere.
  [[nodiscard]] bool exact() const noexcept { return exact_; }
  [[nodiscard]] const mult::MultiplierPtr& model() const noexcept { return model_; }
  [[nodiscard]] const MacCost& cost() const noexcept { return cost_; }
  /// Exhaustive error metrics of the tabulated operand space (the error
  /// the NN data path actually sees, e.g. a 16x16 Ca driven by 8-bit data).
  [[nodiscard]] const error::ErrorMetrics& metrics() const noexcept { return metrics_; }

  /// The product — one load from the precomputed table.
  [[nodiscard]] std::uint32_t mul(unsigned a, unsigned b) const noexcept {
    return table_[(a << data_bits_) | b];
  }
  /// Swapped-operand dispatch (free in hardware: wiring only).
  [[nodiscard]] std::uint32_t mul_swapped(unsigned a, unsigned b) const noexcept {
    return table_[(b << data_bits_) | a];
  }

  /// Auxiliary layouts of the product table for the blocked GEMM kernels
  /// (nn/gemm.cpp): a narrow uint16 copy (one cache line holds 32 products
  /// instead of 16) plus its low/high byte planes for the in-register
  /// byte-shuffle lookup. Built only when the operand space is 8x8 and
  /// every tabulated product fits in 16 bits — true for all the paper's
  /// 8-bit designs; wide-hardware backends whose approximation overshoots
  /// 0xFFFF fall back to the uint32 table.
  struct PackedTables {
    std::vector<std::uint16_t> p16;  ///< u16 products, row a = 256 entries
    std::vector<std::uint8_t> lo;    ///< p16 & 0xFF
    std::vector<std::uint8_t> hi;    ///< p16 >> 8
  };
  [[nodiscard]] bool has_packed_tables() const noexcept { return !packed_[0].p16.empty(); }
  /// `swapped` selects the transposed layout (row b, column a), so the
  /// operand-swap dispatch runs the same kernel on different tables.
  [[nodiscard]] const PackedTables& packed_tables(bool swapped) const noexcept {
    return packed_[swapped ? 1 : 0];
  }

 private:
  std::string name_;
  mult::MultiplierPtr model_;
  unsigned data_bits_ = 8;
  bool exact_ = true;
  std::vector<std::uint32_t> table_;
  std::array<PackedTables, 2> packed_;
  MacCost cost_;
  error::ErrorMetrics metrics_;
};

using MacBackendPtr = std::shared_ptr<const MacBackend>;

/// Names accepted by make_mac_backend: "exact", the paper's 8x8 designs
/// ("ca8", "cc8", "cas8", "ccs8", "cb8", "k8", "w8"), the truncation
/// baseline "trunc8_4", wide-hardware variants "ca16"/"cc16" (8-bit data
/// through 16x16 multipliers) and the elementary module "approx4"
/// (4-bit data through the paper's Table 3 core).
[[nodiscard]] std::vector<std::string> mac_backend_names();

/// Builds (and cost-models) a backend by name; throws std::out_of_range
/// for unknown names.
[[nodiscard]] MacBackendPtr make_mac_backend(const std::string& name);

/// The structural netlist of a registry backend, un-rolled-up — callers
/// that need to re-cost the design under modified timing/power models
/// (e.g. the CFGLUT5-marked dynamic variant in src/adapt) start here.
/// Throws std::out_of_range for unknown names.
[[nodiscard]] fabric::Netlist mac_backend_netlist(const std::string& name);

/// Memoized make_mac_backend: one shared immutable instance per name for
/// the whole process, built exactly once (std::call_once) no matter how
/// many threads race the first touch. Unknown names throw on every call.
/// Use this from concurrent contexts (the axserve daemon) where repeated
/// table construction would dominate; the tables are immutable after
/// construction, so sharing is free.
[[nodiscard]] MacBackendPtr shared_mac_backend(const std::string& name);

/// The exact reference backend at `data_bits` operand width.
[[nodiscard]] MacBackendPtr make_exact_backend(unsigned data_bits = 8);

/// Widening multiply through the backend's product table: each operand is
/// split into data_bits()-wide limbs and the partial products are recombined
/// with exact shifted adds — the way a datapath composes wide MACs out of
/// the paper's narrow multiplier units (recursion with accurate top-level
/// summation). An exact backend therefore composes to the exact 32x32
/// product; an approximate one applies its error to every limb pair.
/// `swapped` routes every limb pair through the transposed table (the
/// Cas/Ccs wiring trick at each unit). `lookups`, when non-null, is
/// incremented once per table access — the MAC-count the energy models
/// charge for.
[[nodiscard]] inline std::uint64_t mul_wide(const MacBackend& mac, std::uint32_t a,
                                            std::uint32_t b,
                                            bool swapped = false,
                                            std::uint64_t* lookups = nullptr) noexcept {
  const unsigned limb = mac.data_bits();
  const std::uint32_t mask = (limb >= 32) ? ~0u : ((1u << limb) - 1u);
  std::uint64_t product = 0;
  for (unsigned i = 0; i < 32; i += limb) {
    const unsigned ai = (a >> i) & mask;
    if (ai == 0) {
      if ((a >> i) == 0) break;
      continue;
    }
    for (unsigned j = 0; j < 32; j += limb) {
      const unsigned bj = (b >> j) & mask;
      if (bj == 0) {
        if ((b >> j) == 0) break;
        continue;
      }
      const std::uint64_t p = swapped ? mac.mul_swapped(ai, bj) : mac.mul(ai, bj);
      product += p << (i + j);
      if (lookups != nullptr) ++*lookups;
    }
  }
  return product;
}

}  // namespace axmult::nn
