// Inference layers over the quantized MAC substrate.
//
// Every layer exists in two coupled forms (the library's recurring split):
// a float reference (`forward_float`, used for range calibration and
// validation) and a quantized data path (`forward`) whose only inexact
// operation is the backend's multiplier — zero-point corrections, bias
// addition and requantization are exact integer/float arithmetic, the way
// an accelerator surrounds an approximate MAC array with exact glue logic.
//
// Calibration protocol (driven by nn::Sequential): each layer observes the
// float calibration batch flowing through, freezes its weight quantization
// and output scale/zero-point, and hands the output batch to the next
// layer. After calibration the quantized path is self-contained.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/mac.hpp"
#include "nn/tensor.hpp"

namespace axmult::nn {

class TileScheduler;  // tileplan.hpp

/// Named float tensors — the unit of the flat .axnn weight container.
using TensorMap = std::map<std::string, Tensor>;

/// The GEMM a MAC layer actually executes for an input of shape `in`:
/// `rows` x `depth` by `depth` x `cols`. For Conv2D these are the im2col
/// dimensions (every padded tap included — those multiplications really
/// run through the MAC array), so rows*depth*cols counts *executed*
/// multiplications, and any partition of [0, rows) into tiles decomposes
/// it exactly. All-zero for layers without a GEMM.
struct GemmShape {
  std::size_t rows = 0;
  std::size_t depth = 0;
  std::size_t cols = 0;
  [[nodiscard]] std::uint64_t macs() const noexcept {
    return static_cast<std::uint64_t>(rows) * depth * cols;
  }
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual std::string kind() const = 0;
  [[nodiscard]] virtual Shape out_shape(const Shape& in) const = 0;

  /// True for layers that multiply (Dense/Conv2D) — the hardware cost
  /// roll-up and the operand-swap option apply only to these.
  [[nodiscard]] virtual bool uses_mac() const noexcept { return false; }
  /// Multiplications performed for one input of shape `in` (batch included).
  [[nodiscard]] virtual std::uint64_t mac_count(const Shape& in) const {
    (void)in;
    return 0;
  }
  /// The GEMM this layer executes for input shape `in` (see GemmShape);
  /// all-zero default for non-MAC layers. gemm_shape(in).macs() counts the
  /// multiplications *executed* (im2col-aware), which is what per-tile
  /// energy accounting must use.
  [[nodiscard]] virtual GemmShape gemm_shape(const Shape& in) const {
    (void)in;
    return {};
  }

  /// Float reference forward.
  [[nodiscard]] virtual Tensor forward_float(const Tensor& in) const = 0;

  /// Quantized forward through `mac`; `swap` routes each product through
  /// the swapped operand order (Cas/Ccs trick). Must be calibrated first.
  [[nodiscard]] virtual QTensor forward(const QTensor& in, const MacBackend& mac, bool swap,
                                        unsigned threads) const = 0;

  /// Quantized forward with per-tile backend selection: MAC layers
  /// announce their GEMM to `sched` and run it panel by panel through
  /// gemm_accumulate_scheduled; everything else (and the default) runs
  /// the plain forward through sched.top_backend(), which exact layers
  /// ignore anyway.
  [[nodiscard]] virtual QTensor forward_planned(const QTensor& in, TileScheduler& sched,
                                                unsigned threads) const;

  /// Observes the float calibration batch `in` (quantized as `in_q`),
  /// freezes internal quantized state at `bits` operand width, writes the
  /// float output batch to `out` and returns the output quantization.
  /// Default: pass-through quantization.
  [[nodiscard]] virtual QuantParams calibrate(const Tensor& in, const QuantParams& in_q,
                                              unsigned bits, Tensor& out) {
    (void)bits;
    out = forward_float(in);
    return in_q;
  }

  virtual void export_weights(TensorMap& out) const { (void)out; }
  /// Replaces float weights from the map (missing keys throw); the layer
  /// must be (re-)calibrated afterwards.
  virtual void import_weights(const TensorMap& in) { (void)in; }

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Shared requantization state of the two MAC layers: maps the int64
/// accumulator of raw uint8 products back to the output's uint8 domain
/// (zero-point corrections, bias, scale conversion) — all exact.
struct RequantState {
  QuantParams in_q;
  QuantParams w_q;
  QuantParams out_q;
  std::vector<std::int64_t> col_sums;  ///< per output channel: sum of quantized weights
  std::vector<std::int64_t> bias_q;    ///< bias at scale in.scale * w.scale
  std::size_t depth = 0;               ///< reduction length K
};

/// Fully connected layer. Accepts any input shape {N, ...} whose trailing
/// dimensions multiply to `in_features` (so it subsumes Flatten).
class Dense final : public Layer {
 public:
  Dense(std::string name, unsigned in_features, unsigned out_features);

  /// `w` is {in_features, out_features}; `bias` has out_features entries.
  void set_weights(Tensor w, std::vector<float> bias);

  [[nodiscard]] std::string kind() const override { return "dense"; }
  [[nodiscard]] Shape out_shape(const Shape& in) const override;
  [[nodiscard]] bool uses_mac() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t mac_count(const Shape& in) const override;
  [[nodiscard]] GemmShape gemm_shape(const Shape& in) const override;
  [[nodiscard]] Tensor forward_float(const Tensor& in) const override;
  [[nodiscard]] QTensor forward(const QTensor& in, const MacBackend& mac, bool swap,
                                unsigned threads) const override;
  [[nodiscard]] QTensor forward_planned(const QTensor& in, TileScheduler& sched,
                                        unsigned threads) const override;
  [[nodiscard]] QuantParams calibrate(const Tensor& in, const QuantParams& in_q, unsigned bits,
                                      Tensor& out) override;
  void export_weights(TensorMap& out) const override;
  void import_weights(const TensorMap& in) override;

 private:
  unsigned in_features_;
  unsigned out_features_;
  Tensor w_;                  // float weights {K, M}
  std::vector<float> bias_;   // M
  QTensor wq_;                // frozen at calibration
  RequantState rq_;
};

/// 2-D convolution (NHWC, HWCM filters) lowered to GEMM via im2col.
/// Padding inserts the input zero-point, which dequantizes to exactly 0.
class Conv2D final : public Layer {
 public:
  Conv2D(std::string name, unsigned kernel_h, unsigned kernel_w, unsigned in_channels,
         unsigned out_channels, unsigned stride = 1, unsigned pad = 0);

  /// `w` is {KH, KW, C, M}; `bias` has M entries.
  void set_weights(Tensor w, std::vector<float> bias);

  [[nodiscard]] std::string kind() const override { return "conv2d"; }
  [[nodiscard]] Shape out_shape(const Shape& in) const override;
  [[nodiscard]] bool uses_mac() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t mac_count(const Shape& in) const override;
  [[nodiscard]] GemmShape gemm_shape(const Shape& in) const override;
  [[nodiscard]] Tensor forward_float(const Tensor& in) const override;
  [[nodiscard]] QTensor forward(const QTensor& in, const MacBackend& mac, bool swap,
                                unsigned threads) const override;
  [[nodiscard]] QTensor forward_planned(const QTensor& in, TileScheduler& sched,
                                        unsigned threads) const override;
  [[nodiscard]] QuantParams calibrate(const Tensor& in, const QuantParams& in_q, unsigned bits,
                                      Tensor& out) override;
  void export_weights(TensorMap& out) const override;
  void import_weights(const TensorMap& in) override;

 private:
  [[nodiscard]] std::vector<std::uint8_t> im2col(const QTensor& in, const Shape& o) const;

  unsigned kh_, kw_, in_c_, out_c_, stride_, pad_;
  Tensor w_;                 // {KH, KW, C, M}
  std::vector<float> bias_;  // M
  QTensor wq_;
  RequantState rq_;
};

/// max(x, 0): in the quantized domain, max(q, zero_point) — exact.
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] std::string kind() const override { return "relu"; }
  [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
  [[nodiscard]] Tensor forward_float(const Tensor& in) const override;
  [[nodiscard]] QTensor forward(const QTensor& in, const MacBackend& mac, bool swap,
                                unsigned threads) const override;
};

/// Non-overlapping-by-default max pooling over NHWC windows. Quantization
/// is monotone, so the quantized max equals the real max — exact.
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::string name, unsigned pool, unsigned stride = 0);
  [[nodiscard]] std::string kind() const override { return "maxpool2d"; }
  [[nodiscard]] Shape out_shape(const Shape& in) const override;
  [[nodiscard]] Tensor forward_float(const Tensor& in) const override;
  [[nodiscard]] QTensor forward(const QTensor& in, const MacBackend& mac, bool swap,
                                unsigned threads) const override;

 private:
  unsigned pool_, stride_;
};

/// Row-wise softmax over {N, F}. Computed in float (an accelerator would
/// run this on the host or an exact unit); output re-quantized onto the
/// fixed probability scale 1/(2^bits - 1), zero-point 0.
class Softmax final : public Layer {
 public:
  explicit Softmax(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] std::string kind() const override { return "softmax"; }
  [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
  [[nodiscard]] Tensor forward_float(const Tensor& in) const override;
  [[nodiscard]] QTensor forward(const QTensor& in, const MacBackend& mac, bool swap,
                                unsigned threads) const override;
  [[nodiscard]] QuantParams calibrate(const Tensor& in, const QuantParams& in_q, unsigned bits,
                                      Tensor& out) override;

 private:
  QuantParams out_q_;
};

}  // namespace axmult::nn
