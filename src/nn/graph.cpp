#include "nn/graph.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "mult/recursive.hpp"
#include "nn/quantize.hpp"

namespace axmult::nn {

namespace {

/// First `rows` batch rows of a quantized batch tensor.
QTensor head_rows(const QTensor& t, std::size_t rows) {
  QTensor out;
  out.shape = t.shape;
  out.shape[0] = static_cast<unsigned>(rows);
  out.q = t.q;
  const std::size_t per_row = t.elems() / t.shape[0];
  out.data.assign(t.data.begin(),
                  t.data.begin() + static_cast<std::ptrdiff_t>(rows * per_row));
  return out;
}

void json_kv(std::ostringstream& os, const char* key, double v) {
  os << '"' << key << "\": " << v;
}

/// Argmax per batch row of a {N, F} tensor.
std::vector<int> argmax_rows(const QTensor& out) {
  if (out.shape.size() != 2) throw std::logic_error("classify: final layer must emit {N, F}");
  const std::size_t f = out.shape[1];
  std::vector<int> labels(out.shape[0]);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto* row = out.data.data() + i * f;
    labels[i] = static_cast<int>(std::max_element(row, row + f) - row);
  }
  return labels;
}

}  // namespace

double output_mre(const QTensor& approx, const QTensor& exact) {
  double sum = 0.0;
  const double floor_val = exact.q.scale;
  for (std::size_t i = 0; i < exact.elems(); ++i) {
    const double ye = exact.q.dequantize(exact.data[i]);
    const double ya = approx.q.dequantize(approx.data[i]);
    sum += std::abs(ya - ye) / std::max(std::abs(ye), floor_val);
  }
  return exact.elems() ? sum / static_cast<double>(exact.elems()) : 0.0;
}

Sequential::Sequential() = default;

std::size_t Sequential::add(LayerPtr layer) {
  slots_.push_back({std::move(layer), nullptr, false});
  return slots_.size() - 1;
}

void Sequential::set_backend(MacBackendPtr backend) { default_ = std::move(backend); }

void Sequential::set_layer_backend(std::size_t i, MacBackendPtr backend, bool swap_operands) {
  slots_.at(i).backend = std::move(backend);
  slots_.at(i).swap = swap_operands;
}

void Sequential::set_layer_swap(std::size_t i, bool swap_operands) {
  slots_.at(i).swap = swap_operands;
}

const MacBackend& Sequential::backend_for(const Slot& s) const {
  const MacBackendPtr& b = s.backend ? s.backend : default_;
  if (!b) throw std::logic_error("Sequential: no MacBackend configured");
  return *b;
}

void Sequential::calibrate(const Tensor& batch, unsigned bits) {
  bits_ = bits;
  input_q_ = Quantizer::fit(batch, bits);
  QuantParams q = input_q_;
  Tensor x = batch;
  for (Slot& s : slots_) {
    Tensor y;
    q = s.layer->calibrate(x, q, bits, y);
    x = std::move(y);
  }
  if (!default_) default_ = make_exact_backend(bits);
  calibrated_ = true;
}

QTensor Sequential::quantize_input(const Tensor& batch) const {
  return Quantizer::quantize(batch, input_q_);
}

Tensor Sequential::run_float(const Tensor& in) const {
  Tensor x = in;
  for (const Slot& s : slots_) x = s.layer->forward_float(x);
  return x;
}

QTensor Sequential::run(const QTensor& in, unsigned threads) const {
  if (!calibrated_) throw std::logic_error("Sequential: calibrate() before run()");
  QTensor x = in;
  for (const Slot& s : slots_) {
    x = s.layer->forward(x, backend_for(s), s.swap, threads);
  }
  return x;
}

QTensor Sequential::run_planned(const QTensor& in, TileScheduler& sched,
                                unsigned threads) const {
  if (!calibrated_) throw std::logic_error("Sequential: calibrate() before run_planned()");
  QTensor x = in;
  for (const Slot& s : slots_) x = s.layer->forward_planned(x, sched, threads);
  return x;
}

std::vector<int> Sequential::classify(const QTensor& in, unsigned threads) const {
  return argmax_rows(run(in, threads));
}

std::vector<int> Sequential::classify_planned(const QTensor& in, TileScheduler& sched,
                                              unsigned threads) const {
  return argmax_rows(run_planned(in, sched, threads));
}

NetworkReport Sequential::evaluate(const QTensor& inputs, const std::vector<int>& labels,
                                   unsigned threads, std::size_t mre_samples) const {
  if (inputs.shape.empty() || inputs.shape[0] != labels.size()) {
    throw std::invalid_argument("evaluate: inputs/labels size mismatch");
  }
  NetworkReport report;
  report.default_backend = default_ ? default_->name() : "";
  report.bits = bits_;
  report.samples = labels.size();

  // Top-1 accuracy over the full set.
  const std::vector<int> predicted = classify(inputs, threads);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predicted[i] == labels[i]) ++correct;
  }
  report.top1_accuracy = static_cast<double>(correct) / static_cast<double>(labels.size());

  // Per-layer roll-up + output MRE on a bounded sub-batch. The approximate
  // activations propagate layer to layer (as they would in hardware); each
  // layer's MRE compares its output against the exact backend applied to
  // the *same approximate input*, isolating that layer's contribution.
  const MacBackend exact_ref("exact_ref", mult::make_accurate(bits_));
  QTensor x = head_rows(inputs, std::min<std::size_t>(mre_samples, inputs.shape[0]));
  Shape unit_shape = inputs.shape;
  unit_shape[0] = 1;
  for (const Slot& s : slots_) {
    LayerReport lr;
    lr.name = s.layer->name();
    lr.kind = s.layer->kind();
    // Executed (im2col-aware) MAC volume, not the shape formula — any
    // per-tile decomposition of this layer's GEMM sums back to exactly
    // this count, which keeps adaptive energy accounting honest.
    lr.macs = s.layer->uses_mac() ? s.layer->gemm_shape(unit_shape).macs() : 0;
    QTensor y = s.layer->forward(x, backend_for(s), s.swap, threads);
    if (s.layer->uses_mac()) {
      const MacBackend& b = backend_for(s);
      lr.backend = b.name();
      lr.swapped = s.swap;
      lr.cost = b.cost();
      lr.energy_au = static_cast<double>(lr.macs) * lr.cost.energy_per_mac_au;
      lr.edp_au = lr.energy_au * lr.cost.critical_path_ns;
      if (!b.exact()) {
        const QTensor y_exact = s.layer->forward(x, exact_ref, false, threads);
        lr.output_mre = output_mre(y, y_exact);
      }
      report.macs += lr.macs;
      report.energy_per_inference_au += lr.energy_au;
      report.critical_path_ns = std::max(report.critical_path_ns, lr.cost.critical_path_ns);
    }
    unit_shape = s.layer->out_shape(unit_shape);
    x = std::move(y);
    report.layers.push_back(std::move(lr));
  }
  report.edp_au = report.energy_per_inference_au * report.critical_path_ns;
  return report;
}

TensorMap Sequential::export_weights() const {
  TensorMap weights;
  for (const Slot& s : slots_) s.layer->export_weights(weights);
  return weights;
}

void Sequential::import_weights(const TensorMap& weights) {
  for (Slot& s : slots_) s.layer->import_weights(weights);
  calibrated_ = false;
}

std::string to_json(const NetworkReport& report) {
  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"backend\": \"" << report.default_backend << "\",\n"
     << "  \"bits\": " << report.bits << ",\n"
     << "  \"samples\": " << report.samples << ",\n  ";
  json_kv(os, "top1_accuracy", report.top1_accuracy);
  os << ",\n  \"macs_per_inference\": " << report.macs << ",\n  ";
  json_kv(os, "energy_per_inference_au", report.energy_per_inference_au);
  os << ",\n  ";
  json_kv(os, "critical_path_ns", report.critical_path_ns);
  os << ",\n  ";
  json_kv(os, "edp_au", report.edp_au);
  os << ",\n  \"layers\": [\n";
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const LayerReport& lr = report.layers[i];
    os << "    {\"name\": \"" << lr.name << "\", \"kind\": \"" << lr.kind
       << "\", \"backend\": \"" << lr.backend << "\", \"swapped\": "
       << (lr.swapped ? "true" : "false") << ", \"macs\": " << lr.macs
       << ", \"luts\": " << lr.cost.luts << ", \"carry4\": " << lr.cost.carry4 << ", ";
    json_kv(os, "critical_path_ns", lr.cost.critical_path_ns);
    os << ", ";
    json_kv(os, "energy_per_mac_au", lr.cost.energy_per_mac_au);
    os << ", ";
    json_kv(os, "energy_au", lr.energy_au);
    os << ", ";
    json_kv(os, "edp_au", lr.edp_au);
    os << ", ";
    json_kv(os, "output_mre", lr.output_mre);
    os << "}" << (i + 1 < report.layers.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace axmult::nn
