#include "nn/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__AVX512VBMI__) && defined(__AVX512BW__)
#include <immintrin.h>
#define AXMULT_GEMM_VBMI 1
#endif

#include "common/parallel_for.hpp"

namespace axmult::nn {

namespace {

/// Rows per work chunk. Fixed (not thread-count derived) so the sharding —
/// and therefore the result, trivially, since cells don't race — is
/// independent of the worker count.
constexpr std::size_t kRowsPerChunk = 8;

/// Column-tile width of the blocked kernels: 64 u32 accumulators live in
/// L1 (and in 4 zmm registers on the AVX-512 path).
constexpr std::size_t kNr = 64;

/// k-panel length between u32 -> int64 accumulator flushes. The largest
/// 16-bit product summed 32768 times stays below 2^31, so the packed u32
/// tile can never wrap within a panel.
constexpr std::size_t kPanel = 32768;

template <bool kSwap>
void gemm_rows(const MacBackend& mac, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t* acc, std::size_t row_begin, std::size_t row_end,
               std::size_t k_dim, std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::uint8_t* arow = a + i * k_dim;
    std::int64_t* out = acc + i * n;
    std::fill(out, out + n, std::int64_t{0});
    for (std::size_t kk = 0; kk < k_dim; ++kk) {
      const unsigned av = arow[kk];
      const std::uint8_t* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        out[j] += kSwap ? mac.mul_swapped(av, brow[j]) : mac.mul(av, brow[j]);
      }
    }
  }
}

/// Portable blocked kernel over columns [j_begin, n): the 256-entry u16
/// product row of each a-value is hoisted out of the column loop (one
/// row per table lookup stream instead of a 256 KiB u32 table walk), the
/// j-tile accumulates in u32, and a 4-row unroll shares each b-row load
/// across four product rows.
void gemm_rows_blocked(const std::uint16_t* tbl, const std::uint8_t* a, const std::uint8_t* b,
                       std::int64_t* acc, std::size_t row_begin, std::size_t row_end,
                       std::size_t k_dim, std::size_t n, std::size_t j_begin) {
  for (std::size_t j0 = j_begin; j0 < n; j0 += kNr) {
    const std::size_t nb = std::min(kNr, n - j0);
    std::size_t i = row_begin;
    for (; i + 4 <= row_end; i += 4) {
      std::int64_t* o0 = acc + (i + 0) * n + j0;
      std::int64_t* o1 = acc + (i + 1) * n + j0;
      std::int64_t* o2 = acc + (i + 2) * n + j0;
      std::int64_t* o3 = acc + (i + 3) * n + j0;
      std::fill(o0, o0 + nb, std::int64_t{0});
      std::fill(o1, o1 + nb, std::int64_t{0});
      std::fill(o2, o2 + nb, std::int64_t{0});
      std::fill(o3, o3 + nb, std::int64_t{0});
      for (std::size_t k0 = 0; k0 < k_dim; k0 += kPanel) {
        const std::size_t ke = std::min(k_dim, k0 + kPanel);
        std::uint32_t l0[kNr] = {};
        std::uint32_t l1[kNr] = {};
        std::uint32_t l2[kNr] = {};
        std::uint32_t l3[kNr] = {};
        for (std::size_t kk = k0; kk < ke; ++kk) {
          const std::uint16_t* r0 = tbl + (std::size_t{a[(i + 0) * k_dim + kk]} << 8);
          const std::uint16_t* r1 = tbl + (std::size_t{a[(i + 1) * k_dim + kk]} << 8);
          const std::uint16_t* r2 = tbl + (std::size_t{a[(i + 2) * k_dim + kk]} << 8);
          const std::uint16_t* r3 = tbl + (std::size_t{a[(i + 3) * k_dim + kk]} << 8);
          const std::uint8_t* brow = b + kk * n + j0;
          for (std::size_t j = 0; j < nb; ++j) {
            const std::uint8_t bj = brow[j];
            l0[j] += r0[bj];
            l1[j] += r1[bj];
            l2[j] += r2[bj];
            l3[j] += r3[bj];
          }
        }
        for (std::size_t j = 0; j < nb; ++j) {
          o0[j] += l0[j];
          o1[j] += l1[j];
          o2[j] += l2[j];
          o3[j] += l3[j];
        }
      }
    }
    for (; i < row_end; ++i) {
      std::int64_t* out = acc + i * n + j0;
      std::fill(out, out + nb, std::int64_t{0});
      for (std::size_t k0 = 0; k0 < k_dim; k0 += kPanel) {
        const std::size_t ke = std::min(k_dim, k0 + kPanel);
        std::uint32_t local[kNr] = {};
        for (std::size_t kk = k0; kk < ke; ++kk) {
          const std::uint16_t* row = tbl + (std::size_t{a[i * k_dim + kk]} << 8);
          const std::uint8_t* brow = b + kk * n + j0;
          for (std::size_t j = 0; j < nb; ++j) local[j] += row[brow[j]];
        }
        for (std::size_t j = 0; j < nb; ++j) out[j] += local[j];
      }
    }
  }
}

#ifdef AXMULT_GEMM_VBMI

/// AVX512-VBMI kernel over the full 64-wide column tiles [0, n_full): the
/// 256-entry byte planes of the product row live in 8 zmm registers and
/// vpermi2b + a blend on the index MSB looks up 64 b-values per plane in
/// two shuffles. The u16 products are rebuilt by byte interleave and
/// widened into 4 u32 zmm accumulators; the spill un-permutes the fixed
/// within-lane unpack pattern back to column order.
void gemm_rows_vbmi(const std::uint8_t* lo_plane, const std::uint8_t* hi_plane,
                    const std::uint8_t* a, const std::uint8_t* b, std::int64_t* acc,
                    std::size_t row_begin, std::size_t row_end, std::size_t k_dim,
                    std::size_t n, std::size_t n_full) {
  for (std::size_t j0 = 0; j0 < n_full; j0 += kNr) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const std::uint8_t* arow = a + i * k_dim;
      std::int64_t* out = acc + i * n + j0;
      std::fill(out, out + kNr, std::int64_t{0});
      for (std::size_t k0 = 0; k0 < k_dim; k0 += kPanel) {
        const std::size_t ke = std::min(k_dim, k0 + kPanel);
        __m512i acc0 = _mm512_setzero_si512();
        __m512i acc1 = _mm512_setzero_si512();
        __m512i acc2 = _mm512_setzero_si512();
        __m512i acc3 = _mm512_setzero_si512();
        for (std::size_t kk = k0; kk < ke; ++kk) {
          const std::size_t base = std::size_t{arow[kk]} << 8;
          const std::uint8_t* lp = lo_plane + base;
          const std::uint8_t* hp = hi_plane + base;
          const __m512i idx = _mm512_loadu_si512(b + kk * n + j0);
          const __mmask64 msb = _mm512_movepi8_mask(idx);  // selects entries 128..255
          const __m512i lo01 =
              _mm512_permutex2var_epi8(_mm512_loadu_si512(lp), idx, _mm512_loadu_si512(lp + 64));
          const __m512i lo23 = _mm512_permutex2var_epi8(_mm512_loadu_si512(lp + 128), idx,
                                                        _mm512_loadu_si512(lp + 192));
          const __m512i lo = _mm512_mask_blend_epi8(msb, lo01, lo23);
          const __m512i hi01 =
              _mm512_permutex2var_epi8(_mm512_loadu_si512(hp), idx, _mm512_loadu_si512(hp + 64));
          const __m512i hi23 = _mm512_permutex2var_epi8(_mm512_loadu_si512(hp + 128), idx,
                                                        _mm512_loadu_si512(hp + 192));
          const __m512i hi = _mm512_mask_blend_epi8(msb, hi01, hi23);
          const __m512i p01 = _mm512_unpacklo_epi8(lo, hi);  // u16 products, lane-permuted
          const __m512i p23 = _mm512_unpackhi_epi8(lo, hi);
          const __m512i z = _mm512_setzero_si512();
          acc0 = _mm512_add_epi32(acc0, _mm512_unpacklo_epi16(p01, z));
          acc1 = _mm512_add_epi32(acc1, _mm512_unpackhi_epi16(p01, z));
          acc2 = _mm512_add_epi32(acc2, _mm512_unpacklo_epi16(p23, z));
          acc3 = _mm512_add_epi32(acc3, _mm512_unpackhi_epi16(p23, z));
        }
        // Within each 128-bit lane L the unpack pattern put columns
        // L*16 + {q*4..q*4+3} into accumulator q.
        alignas(64) std::uint32_t t[4][16];
        _mm512_store_si512(t[0], acc0);
        _mm512_store_si512(t[1], acc1);
        _mm512_store_si512(t[2], acc2);
        _mm512_store_si512(t[3], acc3);
        for (unsigned lane = 0; lane < 4; ++lane) {
          for (unsigned q = 0; q < 4; ++q) {
            for (unsigned e = 0; e < 4; ++e) {
              out[lane * 16 + q * 4 + e] += t[q][lane * 4 + e];
            }
          }
        }
      }
    }
  }
}

#endif  // AXMULT_GEMM_VBMI

/// Blocked fast path for one row range: the SIMD kernel covers the full
/// 64-wide column tiles, the portable blocked kernel the ragged remainder
/// (and everything, on targets without AVX512-VBMI).
void gemm_rows_fast(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
                    const std::uint8_t* b, std::int64_t* acc, std::size_t row_begin,
                    std::size_t row_end, std::size_t k_dim, std::size_t n) {
  const auto& pt = mac.packed_tables(swap_operands);
#ifdef AXMULT_GEMM_VBMI
  const std::size_t n_full = n - n % kNr;
  if (n_full > 0) {
    gemm_rows_vbmi(pt.lo.data(), pt.hi.data(), a, b, acc, row_begin, row_end, k_dim, n, n_full);
  }
  if (n_full < n) {
    gemm_rows_blocked(pt.p16.data(), a, b, acc, row_begin, row_end, k_dim, n, n_full);
  }
#else
  gemm_rows_blocked(pt.p16.data(), a, b, acc, row_begin, row_end, k_dim, n, 0);
#endif
}

template <typename RowKernel>
void gemm_sharded(std::size_t m, unsigned threads, const RowKernel& kernel) {
  const std::uint64_t chunks = (m + kRowsPerChunk - 1) / kRowsPerChunk;
  parallel_chunks(chunks, threads, [&] {
    return [&kernel, m](std::uint64_t chunk) {
      const std::size_t row_begin = static_cast<std::size_t>(chunk) * kRowsPerChunk;
      const std::size_t row_end = std::min(m, row_begin + kRowsPerChunk);
      kernel(row_begin, row_end);
    };
  });
}

/// One tile: rows [0, rows) of the sub-GEMM at `a`/`acc`, one backend.
/// Both public entry points reduce to this — a whole-layer GEMM is just
/// the single-tile special case — so the blocked/VBMI fast paths and the
/// blocked-vs-naive bit-match contract hold per tile by construction.
void gemm_tile(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
               const std::uint8_t* b, std::int64_t* acc, std::size_t rows, std::size_t k_dim,
               std::size_t n, unsigned threads) {
  if (rows == 0 || n == 0) return;
  if (mac.has_packed_tables()) {
    gemm_sharded(rows, threads, [&](std::size_t row_begin, std::size_t row_end) {
      gemm_rows_fast(mac, swap_operands, a, b, acc, row_begin, row_end, k_dim, n);
    });
    return;
  }
  gemm_sharded(rows, threads, [&](std::size_t row_begin, std::size_t row_end) {
    if (swap_operands) {
      gemm_rows<true>(mac, a, b, acc, row_begin, row_end, k_dim, n);
    } else {
      gemm_rows<false>(mac, a, b, acc, row_begin, row_end, k_dim, n);
    }
  });
}

}  // namespace

void gemm_accumulate(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
                     const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                     std::size_t k_dim, std::size_t n, unsigned threads) {
  gemm_tile(mac, swap_operands, a, b, acc, m, k_dim, n, threads);
}

void gemm_accumulate_tiled(const TilePlan& plan, const std::uint8_t* a, const std::uint8_t* b,
                           std::int64_t* acc, std::size_t m, std::size_t k_dim, std::size_t n,
                           unsigned threads) {
  std::size_t prev_end = 0;
  for (const Tile& t : plan) {
    if (t.row_begin < prev_end || t.row_end > m || t.row_begin > t.row_end) {
      throw std::invalid_argument("gemm_accumulate_tiled: tiles must be disjoint, "
                                  "ascending and within [0, m)");
    }
    if (t.row_begin == t.row_end) continue;
    if (t.backend == nullptr) {
      throw std::invalid_argument("gemm_accumulate_tiled: tile without a backend");
    }
    gemm_tile(*t.backend, t.swap, a + t.row_begin * k_dim, b, acc + t.row_begin * n,
              t.row_end - t.row_begin, k_dim, n, threads);
    prev_end = t.row_end;
  }
}

void gemm_accumulate_scheduled(TileScheduler& sched, const std::uint8_t* a,
                               const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                               std::size_t k_dim, std::size_t n, unsigned threads) {
  if (m == 0 || n == 0) return;
  const std::size_t panel = std::max<std::size_t>(1, sched.panel_rows());
  std::size_t index = 0;
  for (std::size_t r0 = 0; r0 < m; r0 += panel, ++index) {
    const std::size_t r1 = std::min(m, r0 + panel);
    // A rejecting observe() means the policy escalated: re-decide and
    // recompute this panel. Accumulators are overwritten, not added to,
    // so recomputation is idempotent.
    for (;;) {
      const TileDecision d = sched.decide(index, r0, r1);
      if (d.backend == nullptr) {
        throw std::logic_error("gemm_accumulate_scheduled: decide() returned no backend");
      }
      gemm_tile(*d.backend, d.swap, a + r0 * k_dim, b, acc + r0 * n, r1 - r0, k_dim, n,
                threads);
      if (sched.observe(index, a, b, acc, r0, r1, k_dim, n)) break;
    }
  }
}

void gemm_accumulate_naive(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
                           const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                           std::size_t k_dim, std::size_t n, unsigned threads) {
  if (m == 0 || n == 0) return;
  gemm_sharded(m, threads, [&](std::size_t row_begin, std::size_t row_end) {
    if (swap_operands) {
      gemm_rows<true>(mac, a, b, acc, row_begin, row_end, k_dim, n);
    } else {
      gemm_rows<false>(mac, a, b, acc, row_begin, row_end, k_dim, n);
    }
  });
}

void gemm_reference(const std::uint8_t* a, const std::uint8_t* b, std::int64_t* acc,
                    std::size_t m, std::size_t k_dim, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t sum = 0;
      for (std::size_t kk = 0; kk < k_dim; ++kk) {
        sum += static_cast<std::int64_t>(a[i * k_dim + kk]) * b[kk * n + j];
      }
      acc[i * n + j] = sum;
    }
  }
}

const char* gemm_kernel_name() noexcept {
#ifdef AXMULT_GEMM_VBMI
  return "avx512-vbmi";
#else
  return "portable-blocked4";
#endif
}

}  // namespace axmult::nn
