#include "nn/gemm.hpp"

#include <algorithm>

#include "common/parallel_for.hpp"

namespace axmult::nn {

namespace {

/// Rows per work chunk. Fixed (not thread-count derived) so the sharding —
/// and therefore the result, trivially, since cells don't race — is
/// independent of the worker count.
constexpr std::size_t kRowsPerChunk = 8;

template <bool kSwap>
void gemm_rows(const MacBackend& mac, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t* acc, std::size_t row_begin, std::size_t row_end,
               std::size_t k_dim, std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::uint8_t* arow = a + i * k_dim;
    std::int64_t* out = acc + i * n;
    std::fill(out, out + n, std::int64_t{0});
    for (std::size_t kk = 0; kk < k_dim; ++kk) {
      const unsigned av = arow[kk];
      const std::uint8_t* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        out[j] += kSwap ? mac.mul_swapped(av, brow[j]) : mac.mul(av, brow[j]);
      }
    }
  }
}

}  // namespace

void gemm_accumulate(const MacBackend& mac, bool swap_operands, const std::uint8_t* a,
                     const std::uint8_t* b, std::int64_t* acc, std::size_t m,
                     std::size_t k_dim, std::size_t n, unsigned threads) {
  if (m == 0 || n == 0) return;
  const std::uint64_t chunks = (m + kRowsPerChunk - 1) / kRowsPerChunk;
  parallel_chunks(chunks, threads, [&] {
    return [&, swap_operands](std::uint64_t chunk) {
      const std::size_t row_begin = static_cast<std::size_t>(chunk) * kRowsPerChunk;
      const std::size_t row_end = std::min(m, row_begin + kRowsPerChunk);
      if (swap_operands) {
        gemm_rows<true>(mac, a, b, acc, row_begin, row_end, k_dim, n);
      } else {
        gemm_rows<false>(mac, a, b, acc, row_begin, row_end, k_dim, n);
      }
    };
  });
}

void gemm_reference(const std::uint8_t* a, const std::uint8_t* b, std::int64_t* acc,
                    std::size_t m, std::size_t k_dim, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t sum = 0;
      for (std::size_t kk = 0; kk < k_dim; ++kk) {
        sum += static_cast<std::int64_t>(a[i * k_dim + kk]) * b[kk * n + j];
      }
      acc[i * n + j] = sum;
    }
  }
}

}  // namespace axmult::nn
