// Per-tile backend selection for the quantized GEMM.
//
// The paper's operand-swap trick is a compile-time accuracy lever; the
// adaptive-precision subsystem (src/adapt) needs the same lever at
// *runtime*, mid-GEMM. The unit of reconfiguration is a row panel — a
// contiguous block of output rows bound to one MacBackend — because that
// is what a CFGLUT5-based MAC array can actually switch between batches
// of work (the INIT shift-in pauses the array; switching per element
// would serialize it).
//
// Two consumers:
//   * TilePlan + gemm_accumulate_tiled: a precomputed static assignment
//     (rows -> backend), e.g. replaying a recorded adaptive schedule.
//   * TileScheduler + gemm_accumulate_scheduled: an online policy asked
//     panel by panel, with a feedback hook (`observe`) that may demand
//     the panel be recomputed after an escalation — the adaptive
//     controller's entry point.
//
// Determinism contract: panels are visited in row order on the calling
// thread; only the row-sharded inner GEMM parallelizes. Every decide/
// observe sequence is therefore identical at any thread count, which is
// what makes adaptive runs bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/mac.hpp"

namespace axmult::nn {

struct RequantState;  // layers.hpp

/// One row panel of a GEMM bound to a backend — the granularity at which
/// the adaptive engine hot-swaps multipliers.
struct Tile {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  const MacBackend* backend = nullptr;
  bool swap = false;
};

/// A full static assignment of a GEMM's rows. Tiles must be disjoint and
/// ascending; rows not covered by any tile are left untouched.
using TilePlan = std::vector<Tile>;

/// Backend choice for one panel, returned by TileScheduler::decide.
struct TileDecision {
  const MacBackend* backend = nullptr;
  bool swap = false;
};

/// Online per-panel backend policy driven by gemm_accumulate_scheduled.
/// Implementations live in src/adapt (drift-monitored hysteresis ladder)
/// and in tests (scripted schedules).
class TileScheduler {
 public:
  virtual ~TileScheduler() = default;

  /// Requested panel height in rows (the last panel may be shorter).
  [[nodiscard]] virtual std::size_t panel_rows() const = 0;

  /// Announces the next GEMM: `m` x `k_dim` by `k_dim` x `n`, belonging to
  /// layer `layer_name`. `rq` is the layer's requantization state when the
  /// caller has one (lets the monitor score errors in the real output
  /// domain) or nullptr for raw GEMMs.
  virtual void begin_gemm(const std::string& layer_name, std::size_t m, std::size_t k_dim,
                          std::size_t n, const RequantState* rq) = 0;

  /// Chooses the backend for panel `panel` covering rows
  /// [row_begin, row_end). Called again for the same panel after a
  /// rejecting observe().
  [[nodiscard]] virtual TileDecision decide(std::size_t panel, std::size_t row_begin,
                                            std::size_t row_end) = 0;

  /// Inspects the freshly computed panel accumulators. Returns true to
  /// accept; false to demand the panel be re-decided and recomputed (the
  /// policy escalated). Implementations must eventually accept every
  /// panel (e.g. always accept on the exact rung) or the GEMM livelocks.
  [[nodiscard]] virtual bool observe(std::size_t panel, const std::uint8_t* a,
                                     const std::uint8_t* b, const std::int64_t* acc,
                                     std::size_t row_begin, std::size_t row_end,
                                     std::size_t k_dim, std::size_t n) = 0;

  /// Most accurate backend the policy can reach — also the backend handed
  /// to layers that ignore it (the default forward_planned plumbing).
  [[nodiscard]] virtual const MacBackend& top_backend() const = 0;
};

}  // namespace axmult::nn
