// Sequential network graph: calibration, quantized inference, and the
// accuracy-vs-hardware-cost report that ties the NN workload back to the
// paper's Pareto metrics (Fig. 10) at network granularity.
//
// Backend plumbing: the graph holds a default MacBackend; every MAC layer
// can override it and/or enable the operand-swap trick individually, so a
// network can, e.g., run its convolution on Cc and its classifier on Cas.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace axmult::nn {

/// Per-layer slice of the inference report.
struct LayerReport {
  std::string name;
  std::string kind;
  std::string backend;  ///< empty for non-MAC layers
  bool swapped = false;
  /// Multiplications *executed* per inference (batch 1): the layer's
  /// actual GEMM volume (Layer::gemm_shape, im2col-aware), not a shape
  /// formula — the count any per-tile decomposition must sum back to.
  std::uint64_t macs = 0;
  MacCost cost;                    ///< per MAC unit (modeled = false if none)
  double energy_au = 0.0;          ///< macs x energy per MAC
  double edp_au = 0.0;             ///< energy_au x this unit's critical path
  double output_mre = 0.0;         ///< vs exact backend on the same inputs
};

/// Whole-network report (the axnn JSON payload).
struct NetworkReport {
  std::string default_backend;
  unsigned bits = 8;
  std::uint64_t samples = 0;
  std::vector<LayerReport> layers;
  std::uint64_t macs = 0;
  double top1_accuracy = 0.0;
  double energy_per_inference_au = 0.0;
  double critical_path_ns = 0.0;  ///< worst MAC unit across layers
  double edp_au = 0.0;            ///< energy per inference x critical path
};

/// Serializes a report as a JSON document.
[[nodiscard]] std::string to_json(const NetworkReport& report);

/// Mean relative error between two quantized tensors sharing quantization,
/// in the real (dequantized) domain; the denominator floors at one output
/// quantum so near-zero exact values don't blow the metric up. This is the
/// metric every SLO in the adaptive subsystem is expressed in.
[[nodiscard]] double output_mre(const QTensor& approx, const QTensor& exact);

class Sequential {
 public:
  Sequential();

  /// Appends a layer; returns its index.
  std::size_t add(LayerPtr layer);

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *slots_.at(i).layer; }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *slots_.at(i).layer; }

  /// Default backend for every MAC layer without an override.
  void set_backend(MacBackendPtr backend);
  /// Per-layer override (pass nullptr to fall back to the default).
  void set_layer_backend(std::size_t i, MacBackendPtr backend, bool swap_operands = false);
  /// Toggles the operand-swap trick on one MAC layer.
  void set_layer_swap(std::size_t i, bool swap_operands);
  [[nodiscard]] const MacBackendPtr& default_backend() const noexcept { return default_; }

  /// Calibrates quantization layer by layer over a float batch (weights
  /// must be set first). `bits` is the operand width fed to the MACs.
  void calibrate(const Tensor& batch, unsigned bits = 8);
  [[nodiscard]] const QuantParams& input_qparams() const noexcept { return input_q_; }
  [[nodiscard]] unsigned bits() const noexcept { return bits_; }

  /// Quantizes a float input batch with the calibrated input params.
  [[nodiscard]] QTensor quantize_input(const Tensor& batch) const;

  /// Float reference forward through every layer.
  [[nodiscard]] Tensor run_float(const Tensor& in) const;

  /// Quantized forward through the configured backends.
  [[nodiscard]] QTensor run(const QTensor& in, unsigned threads = 0) const;

  /// Quantized forward with per-tile backend selection: every MAC layer
  /// consults `sched` panel by panel (src/adapt's entry point into the
  /// network). Deterministic at any thread count for a deterministic
  /// scheduler.
  [[nodiscard]] QTensor run_planned(const QTensor& in, TileScheduler& sched,
                                    unsigned threads = 0) const;

  /// Argmax over the final layer's rows, one label per batch row.
  [[nodiscard]] std::vector<int> classify(const QTensor& in, unsigned threads = 0) const;

  /// classify() through run_planned.
  [[nodiscard]] std::vector<int> classify_planned(const QTensor& in, TileScheduler& sched,
                                                  unsigned threads = 0) const;

  /// Full evaluation: top-1 accuracy over (inputs, labels), per-layer MACs
  /// and hardware roll-up, and per-layer output MRE measured against the
  /// exact backend on at most `mre_samples` inputs.
  [[nodiscard]] NetworkReport evaluate(const QTensor& inputs, const std::vector<int>& labels,
                                       unsigned threads = 0,
                                       std::size_t mre_samples = 64) const;

  /// All float weights, keyed "<layer>.weight" / "<layer>.bias".
  [[nodiscard]] TensorMap export_weights() const;
  /// Replaces weights; the network must be re-calibrated afterwards.
  void import_weights(const TensorMap& weights);

 private:
  struct Slot {
    LayerPtr layer;
    MacBackendPtr backend;  ///< null -> default_
    bool swap = false;
  };
  [[nodiscard]] const MacBackend& backend_for(const Slot& s) const;

  std::vector<Slot> slots_;
  MacBackendPtr default_;
  QuantParams input_q_;
  unsigned bits_ = 8;
  bool calibrated_ = false;
};

}  // namespace axmult::nn
