#include "nn/weights.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace axmult::nn {

namespace {

constexpr char kMagic[8] = {'A', 'X', 'N', 'N', '0', '0', '0', '1'};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error(path + ": " + what);
}

}  // namespace

void save_tensors(const std::string& path, const TensorMap& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail(path, "cannot open for writing");
  os.write(kMagic, sizeof kMagic);
  write_u32(os, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_u32(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u32(os, static_cast<std::uint32_t>(t.shape.size()));
    for (const unsigned d : t.shape) write_u32(os, d);
    os.write(reinterpret_cast<const char*>(t.data.data()),
             static_cast<std::streamsize>(t.data.size() * sizeof(float)));
  }
  if (!os) fail(path, "write failed");
}

TensorMap load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(path, "cannot open");
  char magic[sizeof kMagic];
  is.read(magic, sizeof magic);
  if (!is || !std::equal(magic, magic + sizeof magic, kMagic)) fail(path, "bad magic");
  const std::uint32_t count = read_u32(is);
  TensorMap tensors;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(is);
    if (!is || name_len > 4096) fail(path, "malformed tensor name");
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const std::uint32_t rank = read_u32(is);
    if (!is || rank > 8) fail(path, "malformed tensor rank");
    Shape shape(rank);
    std::size_t elems = 1;
    for (auto& d : shape) {
      d = read_u32(is);
      if (d == 0 || elems > std::numeric_limits<std::uint32_t>::max() / d) {
        fail(path, "malformed tensor dims");
      }
      elems *= d;
    }
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.data.data()),
            static_cast<std::streamsize>(elems * sizeof(float)));
    if (!is) fail(path, "truncated tensor data");
    tensors.emplace(std::move(name), std::move(t));
  }
  return tensors;
}

}  // namespace axmult::nn
