// Work-sharding helpers for the multithreaded sweep paths.
//
// The unit of distribution is a *chunk* (a fixed, thread-count-independent
// slice of the iteration space). Threads pull chunks from a shared atomic
// counter, so the chunk -> thread assignment is dynamic, but because every
// reduction in this codebase is either exact-integer (order-independent) or
// performed per chunk and folded in chunk order afterwards, results are
// bit-identical for any thread count.
//
// Thread-count resolution order: explicit argument > set_thread_count() >
// AXMULT_THREADS environment variable > std::thread::hardware_concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace axmult {

namespace detail {
inline unsigned& thread_count_override() {
  static unsigned count = 0;  // 0 = not set
  return count;
}
}  // namespace detail

/// Process-wide default thread count for sweeps (0 restores auto detection).
inline void set_thread_count(unsigned n) { detail::thread_count_override() = n; }

/// Resolves the effective thread count: `requested` if nonzero, otherwise
/// set_thread_count(), otherwise AXMULT_THREADS, otherwise the hardware
/// concurrency (at least 1).
inline unsigned thread_count(unsigned requested = 0) {
  if (requested != 0) return requested;
  if (detail::thread_count_override() != 0) return detail::thread_count_override();
  if (const char* env = std::getenv("AXMULT_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Strips every `--threads N` / `--threads=N` occurrence from an argv-style
/// argument list, applying set_thread_count() for each, and returns the
/// remaining arguments (argv[0] excluded). Shared by the CLIs and benches so
/// the thread knob parses identically everywhere; non-numeric or zero values
/// mean "auto", matching AXMULT_THREADS semantics.
inline std::vector<std::string> strip_thread_args(int argc, char** argv) {
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      set_thread_count(static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      set_thread_count(static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10)));
    } else {
      rest.emplace_back(a);
    }
  }
  return rest;
}

/// Runs `num_chunks` chunk indices across `threads` workers.
///
/// `make_worker()` is invoked once per worker thread and must return a
/// callable `void(std::uint64_t chunk_index)`; per-thread state (evaluators,
/// scratch buffers, partial accumulators) lives in that closure. With one
/// thread (or one chunk) everything runs inline on the calling thread.
/// The first exception thrown by any worker is rethrown on the caller.
template <typename MakeWorker>
void parallel_chunks(std::uint64_t num_chunks, unsigned threads, MakeWorker&& make_worker) {
  threads = thread_count(threads);
  if (num_chunks == 0) return;
  if (threads <= 1 || num_chunks == 1) {
    auto worker = make_worker();
    for (std::uint64_t c = 0; c < num_chunks; ++c) worker(c);
    return;
  }
  if (threads > num_chunks) threads = static_cast<unsigned>(num_chunks);

  std::atomic<std::uint64_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto body = [&] {
    try {
      auto worker = make_worker();
      for (;;) {
        const std::uint64_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        worker(c);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      // Drain remaining chunks so sibling threads stop promptly.
      next.store(num_chunks, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(body);
  body();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace axmult
