#include "common/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <utility>

namespace axmult {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << cell
         << std::string(width[c] - cell.size(), ' ');
    }
    os << " |\n";
  };
  std::ostringstream os;
  emit_row(os, header_);
  os << '|';
  for (std::size_t c = 0; c < width.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

void Table::print(const std::string& title) const {
  std::fputs(("\n== " + title + " ==\n").c_str(), stdout);
  std::fputs(str().c_str(), stdout);
}

}  // namespace axmult
