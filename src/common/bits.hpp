// Bit-manipulation helpers shared across the library.
//
// All multiplier models in this project operate on unsigned operands held
// in std::uint64_t, which comfortably covers the paper's 4/8/16/32-bit
// design space (a 32x32 product still fits in 64 bits).
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace axmult {

/// Returns bit `pos` (0 = LSB) of `value` as 0 or 1.
[[nodiscard]] constexpr std::uint64_t bit(std::uint64_t value, unsigned pos) noexcept {
  return (value >> pos) & 1u;
}

/// Returns `value` with bit `pos` forced to `b` (0 or 1).
[[nodiscard]] constexpr std::uint64_t with_bit(std::uint64_t value, unsigned pos,
                                               std::uint64_t b) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << pos;
  return (value & ~mask) | ((b & 1u) << pos);
}

/// Mask with the `n` least-significant bits set. `n` must be <= 64.
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Extracts the bit field [lo, lo+width) of `value`.
[[nodiscard]] constexpr std::uint64_t bits(std::uint64_t value, unsigned lo,
                                           unsigned width) noexcept {
  return (value >> lo) & low_mask(width);
}

/// Number of bits needed to represent `value` (0 -> 0).
[[nodiscard]] constexpr unsigned bit_width(std::uint64_t value) noexcept {
  return static_cast<unsigned>(std::bit_width(value));
}

/// True if `value` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && std::has_single_bit(value);
}

/// Population count.
[[nodiscard]] constexpr unsigned popcount(std::uint64_t value) noexcept {
  return static_cast<unsigned>(std::popcount(value));
}

/// Ceil(a / b) for unsigned integers; b must be nonzero.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace axmult
