// Streaming statistics and histogram helpers for error characterization.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace axmult {

/// Welford-style streaming accumulator: mean/variance/min/max over a
/// (possibly huge) stream without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range linear-bin histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x, std::uint64_t weight = 1) noexcept {
    if (counts_.empty()) return;
    double t = (x - lo_) / (hi_ - lo_);
    t = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    counts_[idx] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double normalized(std::size_t bin) const {
    return total_ ? static_cast<double>(counts_.at(bin)) / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace axmult
