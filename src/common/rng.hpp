// xoshiro256** PRNG (Blackman & Vigna), self-contained so experiment
// sampling is reproducible across platforms and standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace axmult {

/// Deterministic, fast 64-bit PRNG used by all sampled experiments.
///
/// Not cryptographic. Satisfies the UniformRandomBitGenerator concept so
/// it can also feed <random> distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from a single 64-bit seed via splitmix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      lane = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias for small bounds
  /// (bound must be nonzero).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift reduction (Lemire).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace axmult
