// Shared deterministic randomness: splitmix64 + xoshiro256** (Blackman &
// Vigna), self-contained so experiment sampling is reproducible across
// platforms and standard libraries.
//
// Every stochastic path in the repo — sampled error sweeps, the Gaussian
// operand sources, power-model toggle vectors, DSE mutation/selection — is
// seeded through this header, so one (seed, stream) pair pins an entire
// experiment.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace axmult {

/// One splitmix64 step: advances `state` and returns the next value.
/// This is the canonical seed-expansion function (also how Xoshiro256
/// derives its four lanes from a single 64-bit seed).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives the seed of sub-stream `stream` from a base seed. Used by the
/// chunked sampled sweeps (stream = chunk begin index) and the DSE engine
/// (stream = generation / operator id) so that parallel consumers draw
/// from disjoint, thread-count-independent streams.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t seed,
                                                         std::uint64_t stream) noexcept {
  return seed ^ ((stream + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Deterministic, fast 64-bit PRNG used by all sampled experiments.
///
/// Not cryptographic. Satisfies the UniformRandomBitGenerator concept so
/// it can also feed <random> distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from a single 64-bit seed via splitmix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& lane : state_) lane = splitmix64(x);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias for small bounds
  /// (bound must be nonzero).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift reduction (Lemire).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// One standard-normal draw (Box-Muller, cosine branch; two uniforms per
/// value). The shared implementation behind every Gaussian operand source.
[[nodiscard]] inline double gaussian01(Xoshiro256& rng) noexcept {
  double u1 = rng.uniform01();
  if (u1 < 1e-12) u1 = 1e-12;
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace axmult
