// Provenance stamping for machine-readable artifacts (BENCH_*.json, the
// axnn compare report, the axserve loadgen report): which source revision
// produced the numbers, with how many threads, from which seed. Shared
// here so every artifact carries the same fields in the same shape and a
// diff between two artifact files immediately names the revisions it
// compares.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace axmult::common {

/// Abbreviated git revision of `repo_dir` (the current directory when
/// null/empty); "unknown" outside a git checkout or when git is absent.
inline std::string git_sha(const char* repo_dir = nullptr) {
  std::string cmd = "git";
  if (repo_dir != nullptr && repo_dir[0] != '\0') {
    cmd += std::string(" -C \"") + repo_dir + "\"";
  }
  cmd += " rev-parse --short HEAD 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe != nullptr) {
    char buf[64] = {};
    const bool ok = std::fgets(buf, sizeof(buf), pipe) != nullptr;
    pclose(pipe);
    if (ok) {
      std::string sha(buf);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
      if (!sha.empty()) return sha;
    }
  }
  return "unknown";
}

/// The standard flat provenance fragment every stamped artifact leads
/// with: `"git_sha": "...", "threads": T, "seed": S` (no braces, ready to
/// splice into an object).
inline std::string provenance_fields(const char* repo_dir, unsigned threads,
                                     std::uint64_t seed) {
  return "\"git_sha\": \"" + git_sha(repo_dir) + "\", \"threads\": " +
         std::to_string(threads) + ", \"seed\": " + std::to_string(seed);
}

}  // namespace axmult::common
