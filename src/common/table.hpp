// Minimal console table formatter so every bench prints paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace axmult {

/// Accumulates rows of strings and renders an aligned ASCII table.
///
/// Used by the bench harness to print the same rows/series the paper's
/// tables and figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits.
  static std::string num(double v, int precision = 4);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string percent(double fraction, int precision = 1);

  /// Renders the table with a rule under the header.
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace axmult
