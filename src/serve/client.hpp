// Client side of the axserve protocol.
//
// One Client is one Unix-domain connection with synchronous semantics: a
// request() call writes one frame and blocks until the matching reply
// arrives. The raw send()/recv() primitives are exposed for pipelined use
// (the load generator keeps several requests in flight per connection and
// matches replies by id); a Client must then be driven from exactly one
// sending and one receiving thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace axmult::serve {

class Client {
 public:
  /// Connects to the server's socket; throws std::runtime_error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Fresh request id (monotonic per connection, never 0).
  [[nodiscard]] std::uint64_t next_id() noexcept { return ++last_id_; }

  /// Sends one frame; false when the connection is dead.
  [[nodiscard]] bool send(const Request& req);
  /// Blocks for the next reply frame; nullopt on EOF/error.
  [[nodiscard]] std::optional<Reply> recv();

  /// Synchronous round trip: assigns an id, sends, and reads until the
  /// reply with that id arrives; throws std::runtime_error when the
  /// connection dies first.
  Reply request(Request req);

  // Convenience wrappers over request().
  [[nodiscard]] bool ping();
  [[nodiscard]] std::string stats_json();  ///< raw stats reply line
  Reply characterize(const std::string& key, double deadline_ms = -1.0);
  /// Submits `keys` as one evaluate-batch frame and collects the per-key
  /// reply frames (exactly keys.size() of them), returned ordered by the
  /// batch index each reply carries. Throws std::runtime_error when the
  /// connection dies before the batch completes.
  std::vector<Reply> evaluate_batch(const std::vector<std::string>& keys,
                                    double deadline_ms = -1.0);
  /// Row-major m x k lhs and k x n rhs; the reply carries m x n int64
  /// accumulators (bit-identical to nn::gemm_accumulate).
  Reply infer(const std::string& backend, bool swap, std::uint32_t m, std::uint32_t k,
              std::uint32_t n, const std::vector<std::uint8_t>& a,
              const std::vector<std::uint8_t>& b, double deadline_ms = -1.0);
  /// Asks the daemon to shut down; true when it acknowledged.
  bool shutdown_server();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::uint64_t last_id_ = 0;
};

/// Repeatedly tries to connect until `timeout_ms` elapses — the handshake
/// used against a freshly spawned daemon. nullopt on timeout.
[[nodiscard]] std::optional<int> connect_with_retry(const std::string& socket_path,
                                                    unsigned timeout_ms);

}  // namespace axmult::serve
