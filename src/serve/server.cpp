#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dse/jsonio.hpp"
#include "dse/space.hpp"
#include "nn/gemm.hpp"
#include "nn/mac.hpp"
#include "serve/protocol.hpp"

namespace axmult::serve {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

/// One client connection. The reader thread owns the fd's lifetime (it is
/// the only closer); every write — and the stop() half-close that unblocks
/// the reader — goes through `write_mu`.
struct Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  int fd;
  std::mutex write_mu;

  void send(const Reply& reply) {
    const std::string line = encode_reply(reply);
    const std::lock_guard<std::mutex> lock(write_mu);
    if (fd >= 0) (void)write_frame(fd, line);
  }
  void half_close() {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  void close_by_reader() {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

using ConnPtr = std::shared_ptr<Conn>;

struct Waiter {
  ConnPtr conn;
  std::uint64_t id = 0;
  Clock::time_point arrival;
  double deadline_ms = -1.0;  ///< < 0 = none
  bool coalesced = false;
  // Reply attribution: characterize waiters leave key/index/total empty;
  // evaluate-batch waiters carry which key of their batch this is, echoed
  // on every outcome (ok, retry, error) so the submitter can requeue or
  // fall back per key.
  std::string op = "characterize";
  std::string key;
  std::uint32_t index = 0;
  std::uint32_t total = 0;

  [[nodiscard]] bool expired() const {
    return deadline_ms >= 0.0 && elapsed_ms(arrival) >= deadline_ms;
  }

  [[nodiscard]] Reply base_reply() const {
    Reply reply;
    reply.id = id;
    reply.op = op;
    reply.key = key;
    reply.index = index;
    reply.total = total;
    return reply;
  }
};

/// One in-flight characterization (single-flight entry): the parsed config
/// and options plus everyone waiting on the result.
struct Flight {
  dse::Config config;
  dse::EvalOptions opts;
  std::vector<Waiter> waiters;
};

struct InferJob {
  ConnPtr conn;
  std::uint64_t id = 0;
  Clock::time_point arrival;
  double deadline_ms = -1.0;
  std::string backend;
  bool swap = false;
  std::uint32_t m = 0, k = 0, n = 0;
  std::vector<std::uint8_t> a, b;

  [[nodiscard]] bool expired() const {
    return deadline_ms >= 0.0 && elapsed_ms(arrival) >= deadline_ms;
  }
};

struct AtomicStats {
  std::atomic<std::uint64_t> connections{0}, requests{0}, parse_errors{0}, pings{0};
  std::atomic<std::uint64_t> characterize_requests{0}, cache_hits{0}, coalesced{0},
      evaluations{0};
  std::atomic<std::uint64_t> batch_requests{0}, batch_keys{0};
  std::atomic<std::uint64_t> infer_requests{0}, infer_rows{0}, gemm_batches{0}, gemm_rows{0},
      merged_requests{0};
  std::atomic<std::uint64_t> retries{0}, deadline_expired{0};

  [[nodiscard]] ServerStats snapshot() const {
    ServerStats s;
    s.connections = connections.load();
    s.requests = requests.load();
    s.parse_errors = parse_errors.load();
    s.pings = pings.load();
    s.characterize_requests = characterize_requests.load();
    s.cache_hits = cache_hits.load();
    s.coalesced = coalesced.load();
    s.evaluations = evaluations.load();
    s.batch_requests = batch_requests.load();
    s.batch_keys = batch_keys.load();
    s.infer_requests = infer_requests.load();
    s.infer_rows = infer_rows.load();
    s.gemm_batches = gemm_batches.load();
    s.gemm_rows = gemm_rows.load();
    s.merged_requests = merged_requests.load();
    s.retries = retries.load();
    s.deadline_expired = deadline_expired.load();
    return s;
  }
};

}  // namespace

std::string ServerStats::to_json_fields() const {
  std::ostringstream os;
  os << "\"connections\": " << connections << ", \"requests\": " << requests
     << ", \"parse_errors\": " << parse_errors << ", \"pings\": " << pings
     << ", \"characterize_requests\": " << characterize_requests
     << ", \"cache_hits\": " << cache_hits << ", \"coalesced\": " << coalesced
     << ", \"evaluations\": " << evaluations << ", \"batch_requests\": " << batch_requests
     << ", \"batch_keys\": " << batch_keys << ", \"infer_requests\": " << infer_requests
     << ", \"infer_rows\": " << infer_rows << ", \"gemm_batches\": " << gemm_batches
     << ", \"gemm_rows\": " << gemm_rows << ", \"merged_requests\": " << merged_requests
     << ", \"retries\": " << retries << ", \"deadline_expired\": " << deadline_expired;
  return os.str();
}

struct Server::Impl {
  explicit Impl(ServerOptions o) : opts(std::move(o)), cache(opts.cache_path) {}

  ServerOptions opts;
  dse::EvalCache cache;
  AtomicStats stats;

  int listen_fd = -1;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stop_requested{false};

  std::thread accept_thread;
  std::mutex conns_mu;
  std::vector<ConnPtr> conns;
  std::vector<std::thread> conn_threads;

  // Single-flight characterization state. Lock order: flight_mu before
  // queue_mu before the cache's internal mutex; workers take the locks one
  // at a time, never nested the other way.
  std::mutex flight_mu;
  std::map<std::string, std::shared_ptr<Flight>> flights;
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<std::string> queue;  ///< full cache keys with a live Flight
  std::vector<std::thread> workers;

  // Cross-client GEMM batching state.
  std::mutex batch_mu;
  std::condition_variable batch_cv;
  std::deque<InferJob> batch_queue;
  std::size_t queued_rows = 0;
  std::thread batcher;

  // Memoized backend resolution (names and dse:<key> configs). Builds are
  // serialized under the mutex — first-touch only, the table is immutable
  // afterwards.
  std::mutex backend_mu;
  std::map<std::string, nn::MacBackendPtr> backends;

  // ---- lifecycle ----------------------------------------------------------

  void start();
  void stop();
  void accept_loop();
  void reader(const ConnPtr& conn);

  // ---- request handling ---------------------------------------------------

  void handle_frame(const ConnPtr& conn, const std::string& payload);
  void handle_characterize(const ConnPtr& conn, const Request& req);
  void handle_evaluate_batch(const ConnPtr& conn, const Request& req);
  /// Shared tail of characterize and evaluate-batch: parse the config key,
  /// answer from cache, join or create the single-flight entry, or push
  /// back with a retry. The waiter carries the reply attribution.
  void enqueue_characterize(const std::string& key_str, const dse::EvalOptions& eval_opts,
                            Waiter waiter);
  void handle_infer(const ConnPtr& conn, Request&& req);

  void worker_loop();
  void batcher_loop();
  void run_batch(std::vector<InferJob>& jobs);

  nn::MacBackendPtr resolve_backend(const std::string& name);

  void send_deadline(const Waiter& w) {
    stats.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    Reply reply = w.base_reply();
    reply.error = "deadline";
    w.conn->send(reply);
  }
  void send_error(const Waiter& w, const std::string& err) {
    Reply reply = w.base_reply();
    reply.error = err;
    w.conn->send(reply);
  }
  void send_retry(const Waiter& w) {
    stats.retries.fetch_add(1, std::memory_order_relaxed);
    Reply reply = w.base_reply();
    reply.retry = true;
    reply.error = "busy";
    w.conn->send(reply);
  }
  void send_objectives(const Waiter& w, const dse::Objectives& obj, bool cached) {
    Reply reply = w.base_reply();
    reply.ok = true;
    reply.has_objectives = true;
    reply.objectives = obj;
    reply.cached = cached;
    reply.coalesced = w.coalesced;
    w.conn->send(reply);
  }
};

// ---- lifecycle ------------------------------------------------------------

void Server::Impl::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.empty() || opts.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path empty or too long for AF_UNIX: '" +
                             opts.socket_path + "'");
  }
  std::memcpy(addr.sun_path, opts.socket_path.c_str(), opts.socket_path.size() + 1);
  listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) throw std::runtime_error("serve: socket() failed");
  ::unlink(opts.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 128) < 0) {
    ::close(listen_fd);
    listen_fd = -1;
    throw std::runtime_error("serve: cannot bind/listen on '" + opts.socket_path +
                             "': " + std::strerror(errno));
  }
  started = true;
  accept_thread = std::thread([this] { accept_loop(); });
  const unsigned nworkers = opts.workers != 0 ? opts.workers : 1;
  workers.reserve(nworkers);
  for (unsigned i = 0; i < nworkers; ++i) workers.emplace_back([this] { worker_loop(); });
  batcher = std::thread([this] { batcher_loop(); });
}

void Server::Impl::stop() {
  if (!started.exchange(false)) return;
  stopping = true;
  stop_requested = true;

  // 1. No new connections.
  if (accept_thread.joinable()) accept_thread.join();
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd = -1;
  }

  // 2. Drain unserved characterize jobs with retry replies (in-flight
  //    evaluations finish normally), then join the workers.
  {
    std::vector<Waiter> orphans;
    {
      const std::lock_guard<std::mutex> flock(flight_mu);
      const std::lock_guard<std::mutex> qlock(queue_mu);
      for (const std::string& key : queue) {
        const auto it = flights.find(key);
        if (it == flights.end()) continue;
        for (Waiter& w : it->second->waiters) orphans.push_back(std::move(w));
        flights.erase(it);
      }
      queue.clear();
    }
    for (const Waiter& w : orphans) send_retry(w);
  }
  queue_cv.notify_all();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  workers.clear();

  // 3. Same for queued GEMM work, then join the batcher.
  {
    std::deque<InferJob> orphans;
    {
      const std::lock_guard<std::mutex> lock(batch_mu);
      orphans.swap(batch_queue);
      queued_rows = 0;
    }
    for (const InferJob& job : orphans) {
      stats.retries.fetch_add(1, std::memory_order_relaxed);
      job.conn->send(retry_reply(job.id));
    }
  }
  batch_cv.notify_all();
  if (batcher.joinable()) batcher.join();

  // 4. Unblock and join the readers, release the socket path.
  {
    const std::lock_guard<std::mutex> lock(conns_mu);
    for (const ConnPtr& conn : conns) conn->half_close();
  }
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conns_mu);
    threads.swap(conn_threads);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    const std::lock_guard<std::mutex> lock(conns_mu);
    conns.clear();
  }
  ::unlink(opts.socket_path.c_str());
}

void Server::Impl::accept_loop() {
  while (!stopping.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);
    if (r <= 0) continue;
    const int cfd = ::accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    stats.connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>(cfd);
    const std::lock_guard<std::mutex> lock(conns_mu);
    if (stopping.load(std::memory_order_relaxed)) {
      ::close(cfd);
      break;
    }
    conns.push_back(conn);
    conn_threads.emplace_back([this, conn] { reader(conn); });
  }
}

void Server::Impl::reader(const ConnPtr& conn) {
  std::string payload;
  for (;;) {
    const FrameStatus status = read_frame(conn->fd, payload);
    if (status == FrameStatus::kOk) {
      try {
        handle_frame(conn, payload);
      } catch (const std::exception& e) {
        // A handler must never take the connection (let alone the server)
        // down; the client gets the reason instead.
        conn->send(error_reply(0, std::string("internal: ") + e.what()));
      }
      continue;
    }
    if (status == FrameStatus::kOversized) {
      // The stream cannot be resynced past an unread oversized body: say
      // why, then drop the connection.
      stats.parse_errors.fetch_add(1, std::memory_order_relaxed);
      conn->send(error_reply(0, "oversized"));
    }
    break;  // EOF / truncated / error / oversized: connection is done
  }
  conn->close_by_reader();
}

// ---- request handling -----------------------------------------------------

void Server::Impl::handle_frame(const ConnPtr& conn, const std::string& payload) {
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  std::string why;
  std::optional<Request> req = parse_request(payload, &why);
  if (!req) {
    stats.parse_errors.fetch_add(1, std::memory_order_relaxed);
    // Best-effort id echo so a pipelining client can match the error.
    const std::uint64_t id =
        static_cast<std::uint64_t>(dse::jsonio::find_number(payload, "id").value_or(0.0));
    conn->send(error_reply(id, why.empty() ? "parse" : why));
    return;
  }
  switch (req->op) {
    case Op::kPing: {
      stats.pings.fetch_add(1, std::memory_order_relaxed);
      Reply reply;
      reply.id = req->id;
      reply.op = "ping";
      reply.ok = true;
      reply.payload = "\"proto\": " + std::to_string(kProtocolVersion);
      conn->send(reply);
      return;
    }
    case Op::kStats: {
      Reply reply;
      reply.id = req->id;
      reply.op = "stats";
      reply.ok = true;
      reply.payload = stats.snapshot().to_json_fields();
      conn->send(reply);
      return;
    }
    case Op::kShutdown: {
      Reply reply;
      reply.id = req->id;
      reply.op = "shutdown";
      reply.ok = true;
      conn->send(reply);
      stop_requested = true;  // wait() observes this; its caller stop()s
      return;
    }
    case Op::kCharacterize: handle_characterize(conn, *req); return;
    case Op::kEvaluateBatch: handle_evaluate_batch(conn, *req); return;
    case Op::kInfer: handle_infer(conn, std::move(*req)); return;
  }
}

void Server::Impl::handle_characterize(const ConnPtr& conn, const Request& req) {
  stats.characterize_requests.fetch_add(1, std::memory_order_relaxed);
  Waiter waiter{conn, req.id, Clock::now(), req.deadline_ms, /*coalesced=*/false};
  enqueue_characterize(req.key, req.eval_options(opts.eval), std::move(waiter));
}

void Server::Impl::handle_evaluate_batch(const ConnPtr& conn, const Request& req) {
  stats.batch_requests.fetch_add(1, std::memory_order_relaxed);
  stats.batch_keys.fetch_add(req.keys.size(), std::memory_order_relaxed);
  const dse::EvalOptions eval_opts = req.eval_options(opts.eval);
  const auto total = static_cast<std::uint32_t>(req.keys.size());
  const Clock::time_point arrival = Clock::now();
  // Each key becomes an independent waiter on the shared single-flight
  // queue: cache hits answer inline, duplicates coalesce (with other
  // clients' characterize traffic too), a full queue pushes back per key.
  for (std::uint32_t i = 0; i < total; ++i) {
    Waiter waiter{conn,  req.id, arrival, req.deadline_ms, /*coalesced=*/false,
                  "evaluate-batch", req.keys[i], i, total};
    enqueue_characterize(req.keys[i], eval_opts, std::move(waiter));
  }
}

void Server::Impl::enqueue_characterize(const std::string& key_str,
                                        const dse::EvalOptions& eval_opts, Waiter waiter) {
  dse::Config config;
  try {
    config = dse::parse_key(key_str);
  } catch (const std::exception& e) {
    send_error(waiter, e.what());
    return;
  }
  const std::string full_key = dse::EvalCache::full_key(config, eval_opts);

  // The flight lock spans the cache lookup and the join/create decision:
  // a flight is only erased *after* its result went into the cache, so
  // under this lock every duplicate request either hits the cache or finds
  // the flight — never a second evaluation.
  const std::lock_guard<std::mutex> flock(flight_mu);
  if (const auto cached = cache.lookup(full_key)) {
    stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
    send_objectives(waiter, *cached, /*cached=*/true);
    return;
  }
  if (const auto it = flights.find(full_key); it != flights.end()) {
    stats.coalesced.fetch_add(1, std::memory_order_relaxed);
    waiter.coalesced = true;
    it->second->waiters.push_back(std::move(waiter));
    return;
  }
  const std::lock_guard<std::mutex> qlock(queue_mu);
  if (stopping.load(std::memory_order_relaxed) ||
      queue.size() >= opts.max_pending_characterize) {
    send_retry(waiter);
    return;
  }
  auto flight = std::make_shared<Flight>();
  flight->config = config;
  flight->opts = eval_opts;
  flight->waiters.push_back(std::move(waiter));
  flights.emplace(full_key, std::move(flight));
  queue.push_back(full_key);
  queue_cv.notify_one();
}

void Server::Impl::handle_infer(const ConnPtr& conn, Request&& req) {
  stats.infer_requests.fetch_add(1, std::memory_order_relaxed);
  InferJob job;
  job.conn = conn;
  job.id = req.id;
  job.arrival = Clock::now();
  job.deadline_ms = req.deadline_ms;
  job.backend = std::move(req.backend);
  job.swap = req.swap;
  job.m = req.m;
  job.k = req.k;
  job.n = req.n;
  job.a = std::move(req.a);
  job.b = std::move(req.b);
  {
    const std::lock_guard<std::mutex> lock(batch_mu);
    if (stopping.load(std::memory_order_relaxed) ||
        queued_rows + job.m > opts.max_pending_infer_rows) {
      stats.retries.fetch_add(1, std::memory_order_relaxed);
      conn->send(retry_reply(job.id));
      return;
    }
    queued_rows += job.m;
    stats.infer_rows.fetch_add(job.m, std::memory_order_relaxed);
    batch_queue.push_back(std::move(job));
  }
  batch_cv.notify_one();
}

// ---- characterization workers ---------------------------------------------

void Server::Impl::worker_loop() {
  for (;;) {
    std::string key;
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      queue_cv.wait(lock, [this] {
        return stopping.load(std::memory_order_relaxed) || !queue.empty();
      });
      if (queue.empty()) return;  // stopping and drained
      key = std::move(queue.front());
      queue.pop_front();
    }

    // Prune waiters whose deadline has already passed; when nobody is left
    // the evaluation is skipped entirely.
    dse::Config config;
    dse::EvalOptions opts;
    std::vector<Waiter> expired;
    {
      const std::lock_guard<std::mutex> lock(flight_mu);
      const auto it = flights.find(key);
      if (it == flights.end()) continue;  // drained by stop()
      auto& waiters = it->second->waiters;
      for (std::size_t i = waiters.size(); i-- > 0;) {
        if (waiters[i].expired()) {
          expired.push_back(std::move(waiters[i]));
          waiters.erase(waiters.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      if (waiters.empty()) {
        flights.erase(it);
        for (const Waiter& w : expired) send_deadline(w);
        continue;
      }
      config = it->second->config;
      opts = it->second->opts;
    }
    for (const Waiter& w : expired) send_deadline(w);

    // Another server process sharing the cache file may have evaluated
    // this key since our in-memory load; merge before paying for it.
    cache.reload();
    bool from_cache = true;
    std::string failure;
    dse::Objectives obj;
    if (const auto cached = cache.lookup(key)) {
      obj = *cached;
    } else {
      from_cache = false;
      try {
        obj = dse::evaluate(config, opts);
        stats.evaluations.fetch_add(1, std::memory_order_relaxed);
        cache.insert(key, obj);
      } catch (const std::exception& e) {
        failure = e.what();
      }
    }

    std::vector<Waiter> waiters;
    {
      const std::lock_guard<std::mutex> lock(flight_mu);
      const auto it = flights.find(key);
      if (it != flights.end()) {
        waiters = std::move(it->second->waiters);
        flights.erase(it);
      }
    }
    for (const Waiter& w : waiters) {
      if (!failure.empty()) {
        send_error(w, failure);
        continue;
      }
      if (w.expired()) {
        send_deadline(w);
        continue;
      }
      send_objectives(w, obj, from_cache);
    }
  }
}

// ---- GEMM batcher ---------------------------------------------------------

nn::MacBackendPtr Server::Impl::resolve_backend(const std::string& name) {
  const std::lock_guard<std::mutex> lock(backend_mu);
  if (const auto it = backends.find(name); it != backends.end()) return it->second;
  nn::MacBackendPtr backend;
  if (name.rfind("dse:", 0) == 0) {
    backend = dse::make_backend(dse::parse_key(name.substr(4)));
  } else {
    backend = nn::shared_mac_backend(name);
  }
  backends.emplace(name, backend);
  return backend;
}

void Server::Impl::batcher_loop() {
  for (;;) {
    std::vector<InferJob> jobs;
    {
      std::unique_lock<std::mutex> lock(batch_mu);
      batch_cv.wait(lock, [this] {
        return stopping.load(std::memory_order_relaxed) || !batch_queue.empty();
      });
      if (batch_queue.empty()) return;  // stopping and drained
      std::size_t rows = 0;
      while (!batch_queue.empty()) {
        const std::size_t next = batch_queue.front().m;
        if (!jobs.empty() && rows + next > opts.max_batch_rows) break;
        rows += next;
        queued_rows -= next;
        jobs.push_back(std::move(batch_queue.front()));
        batch_queue.pop_front();
      }
    }
    // Group by (backend, swap, k, n, rhs panel) and run each group as one
    // merged GEMM; requests whose rhs differs never share a panel.
    std::vector<std::vector<InferJob>> groups;
    for (InferJob& job : jobs) {
      bool placed = false;
      for (auto& group : groups) {
        const InferJob& head = group.front();
        if (head.backend == job.backend && head.swap == job.swap && head.k == job.k &&
            head.n == job.n && head.b == job.b) {
          group.push_back(std::move(job));
          placed = true;
          break;
        }
      }
      if (!placed) groups.emplace_back().push_back(std::move(job));
    }
    for (auto& group : groups) run_batch(group);
  }
}

void Server::Impl::run_batch(std::vector<InferJob>& jobs) {
  // Deadline pruning first: expired requests never pay for the GEMM.
  std::vector<InferJob> live;
  live.reserve(jobs.size());
  for (InferJob& job : jobs) {
    if (job.expired()) {
      stats.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      job.conn->send(error_reply(job.id, "deadline"));
    } else {
      live.push_back(std::move(job));
    }
  }
  if (live.empty()) return;

  nn::MacBackendPtr backend;
  try {
    backend = resolve_backend(live.front().backend);
  } catch (const std::exception& e) {
    for (const InferJob& job : live) job.conn->send(error_reply(job.id, e.what()));
    return;
  }
  // Narrow-data backends (e.g. approx4) index their table with
  // data_bits-wide operands; anything wider would read out of bounds.
  if (backend->data_bits() < 8) {
    const std::uint8_t limit = static_cast<std::uint8_t>(1u << backend->data_bits());
    for (std::size_t i = live.size(); i-- > 0;) {
      const auto over = [limit](std::uint8_t v) { return v >= limit; };
      if (std::any_of(live[i].a.begin(), live[i].a.end(), over) ||
          std::any_of(live[i].b.begin(), live[i].b.end(), over)) {
        live[i].conn->send(error_reply(live[i].id, "operand exceeds backend data bits"));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (live.empty()) return;
  }

  const std::size_t k = live.front().k;
  const std::size_t n = live.front().n;
  std::size_t total_rows = 0;
  for (const InferJob& job : live) total_rows += job.m;

  // Stack every client's lhs rows into one panel and run the blocked
  // kernel once; the accumulator rows scatter back in the same order.
  std::vector<std::uint8_t> a_panel(total_rows * k);
  std::size_t row = 0;
  for (const InferJob& job : live) {
    std::memcpy(a_panel.data() + row * k, job.a.data(), job.a.size());
    row += job.m;
  }
  std::vector<std::int64_t> acc(total_rows * n, 0);
  nn::gemm_accumulate(*backend, live.front().swap, a_panel.data(), live.front().b.data(),
                      acc.data(), total_rows, k, n, opts.gemm_threads);

  stats.gemm_batches.fetch_add(1, std::memory_order_relaxed);
  stats.gemm_rows.fetch_add(total_rows, std::memory_order_relaxed);
  stats.merged_requests.fetch_add(live.size(), std::memory_order_relaxed);

  row = 0;
  for (const InferJob& job : live) {
    Reply reply;
    reply.id = job.id;
    reply.op = "infer";
    reply.ok = true;
    reply.rows = job.m;
    reply.cols = static_cast<std::uint32_t>(n);
    reply.batch_rows = static_cast<std::uint32_t>(total_rows);
    reply.acc.assign(acc.begin() + static_cast<std::ptrdiff_t>(row * n),
                     acc.begin() + static_cast<std::ptrdiff_t>((row + job.m) * n));
    job.conn->send(reply);
    row += job.m;
  }
}

// ---- public facade --------------------------------------------------------

Server::Server(ServerOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() { stop(); }

void Server::start() { impl_->start(); }

void Server::stop() { impl_->stop(); }

void Server::wait() {
  while (!impl_->stop_requested.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void Server::request_stop() noexcept { impl_->stop_requested = true; }

bool Server::running() const noexcept { return impl_->started.load(); }

ServerStats Server::stats() const { return impl_->stats.snapshot(); }

const std::string& Server::socket_path() const noexcept { return impl_->opts.socket_path; }

dse::EvalCache& Server::cache() noexcept { return impl_->cache; }

}  // namespace axmult::serve
