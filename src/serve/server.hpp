// axserve daemon core: a concurrent characterization-and-inference server.
//
// One Server owns a Unix-domain listening socket and four kinds of threads:
//   * the accept loop,
//   * one reader thread per client connection (requests are parsed and
//     either answered inline or enqueued),
//   * a characterization worker pool draining a bounded job queue through
//     dse::evaluate (analytic-first) into the shared, mutex-disciplined
//     EvalCache, and
//   * a single batcher thread that merges queued GEMM requests from all
//     clients into wide panels for the nn::MacBackend blocked/AVX512
//     kernels and scatters the rows back per client.
//
// Concurrency contracts:
//   * Duplicate in-flight characterizations coalesce: a single-flight map
//     keyed by the full cache key guarantees at most one dse::evaluate per
//     key regardless of how many clients ask concurrently (the map is only
//     erased after the result is in the cache, and lookups take the flight
//     lock, so late requests fall through to a cache hit instead of
//     re-evaluating).
//   * Backpressure is explicit: when a bounded queue is full the request is
//     answered immediately with {"retry": true} instead of blocking the
//     connection or growing without bound.
//   * Per-request deadlines: a request whose deadline passes while queued
//     is answered with {"err": "deadline"} and never pays for evaluation.
//   * Graceful shutdown: stop() closes the listener, wakes the queues
//     (unserved jobs get retry replies), finishes in-flight work, joins
//     every thread and unlinks the socket.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dse/cache.hpp"
#include "dse/evaluate.hpp"

namespace axmult::serve {

struct ServerOptions {
  std::string socket_path = "axserve.sock";
  /// Characterization worker threads.
  unsigned workers = 2;
  /// GEMM threads per merged panel (1 = batching across clients is the
  /// only parallelism; results are bit-identical for any value).
  unsigned gemm_threads = 1;
  /// Bounded-queue limits; a full queue answers {"retry": true}.
  std::size_t max_pending_characterize = 256;
  std::size_t max_pending_infer_rows = 65536;
  /// Row ceiling of one merged GEMM panel (a single oversized request
  /// still runs alone).
  std::size_t max_batch_rows = 4096;
  /// Backing file of the shared EvalCache ("" = in-memory only).
  std::string cache_path;
  /// Default evaluation options; requests may override the uniform-sweep
  /// knobs (exhaustive_bits/samples/seed/analytic) per call.
  dse::EvalOptions eval;
};

/// Monotonic counters, snapshotted by stats() and served by the "stats" op.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t pings = 0;
  // characterize
  std::uint64_t characterize_requests = 0;
  std::uint64_t cache_hits = 0;   ///< answered straight from the EvalCache
  std::uint64_t coalesced = 0;    ///< joined another client's in-flight eval
  std::uint64_t evaluations = 0;  ///< actual dse::evaluate calls
  // evaluate-batch (the dse::EvalFarm transport; keys ride the same
  // single-flight characterize queue and count into the fields above)
  std::uint64_t batch_requests = 0;
  std::uint64_t batch_keys = 0;
  // infer
  std::uint64_t infer_requests = 0;
  std::uint64_t infer_rows = 0;       ///< rows accepted into the queue
  std::uint64_t gemm_batches = 0;     ///< merged GEMM launches
  std::uint64_t gemm_rows = 0;        ///< total rows across merged panels
  std::uint64_t merged_requests = 0;  ///< requests folded into those panels
  // flow control
  std::uint64_t retries = 0;           ///< {"retry": true} replies sent
  std::uint64_t deadline_expired = 0;  ///< {"err": "deadline"} replies sent

  /// JSON fragment (flat fields) for the "stats" reply payload.
  [[nodiscard]] std::string to_json_fields() const;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept/worker/batcher threads; throws
  /// std::runtime_error when the socket cannot be created.
  void start();

  /// Graceful shutdown (idempotent): see the class comment.
  void stop();

  /// Blocks until another party requests a stop — a "shutdown" request, a
  /// signal handler calling request_stop(), or stop() itself. Returns
  /// without having stopped the threads; the caller runs stop().
  void wait();

  /// Async-signal-usable stop trigger: only sets a flag and wakes wait().
  void request_stop() noexcept;

  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const std::string& socket_path() const noexcept;
  /// The shared evaluation cache (valid for the Server's lifetime).
  [[nodiscard]] dse::EvalCache& cache() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace axmult::serve
