// Load generator for the axserve daemon: N concurrent clients driving a
// sustained characterize/infer request mix against one server, recording
// throughput, p50/p99 latency and the server's coalescing/batching rates.
//
// Each client runs on its own connection and thread with an independent
// derive_stream_seed RNG stream. With `rate_per_client` set, requests are
// issued on an open-loop arrival schedule (a client that falls behind
// fires back-to-back until it catches up); at 0 the clients run closed
// loop, back to back. Characterize keys are drawn from a small shared pool
// so duplicate in-flight requests (coalescing) and cache hits actually
// occur; infer requests share one rhs panel so cross-client batching
// lights up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace axmult::serve {

struct LoadgenOptions {
  std::string socket_path;
  unsigned clients = 8;
  double duration_s = 5.0;
  double rate_per_client = 0.0;  ///< target req/s per client; 0 = closed loop
  double infer_fraction = 0.5;   ///< request mix: P(infer) vs characterize
  std::uint32_t infer_m = 8, infer_k = 64, infer_n = 32;
  std::string backend = "ca8";
  std::vector<std::string> keys;  ///< characterize pool; empty = default_key_pool()
  std::uint64_t seed = 1;
};

struct LoadgenReport {
  // Client-side outcome counts.
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t retried = 0;   ///< backpressure replies
  std::uint64_t deadline = 0;  ///< deadline-expired replies
  std::uint64_t errors = 0;    ///< every other failure
  double duration_s = 0.0;
  double rps = 0.0;  ///< completed requests (any outcome) per second
  // Latency over completed round trips.
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  // Server-side counter deltas over the run window.
  ServerStats before, after;
  double cache_hit_rate = 0.0;       ///< hits / characterize
  double coalesce_rate = 0.0;        ///< coalesced / characterize
  double reuse_rate = 0.0;           ///< (hits + coalesced) / characterize
  double batch_fill_requests = 0.0;  ///< merged requests per GEMM launch
  double batch_fill_rows = 0.0;      ///< panel rows per GEMM launch
};

/// The default characterize pool: the paper's Ca8/Cc8 anchors plus
/// truncated and swapped variants (6 distinct dse keys).
[[nodiscard]] std::vector<std::string> default_key_pool();

/// Runs the load against a listening daemon; throws std::runtime_error
/// when the socket cannot be reached.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenOptions& opts);

/// Parses the flat counter fields out of a "stats" reply line.
[[nodiscard]] ServerStats parse_server_stats(const std::string& json);

/// The report as a JSON document. `provenance` is a flat fragment spliced
/// in front (e.g. "\"git_sha\": \"abc\", \"threads\": 2"); empty to omit.
[[nodiscard]] std::string loadgen_json(const LoadgenOptions& opts, const LoadgenReport& report,
                                       const std::string& provenance);

}  // namespace axmult::serve
