// Wire protocol of the axserve daemon.
//
// Transport: a Unix-domain stream socket carrying length-prefixed frames —
// a 4-byte little-endian payload length followed by that many bytes of
// flat, single-line JSON in the same hand-written dialect the rest of the
// repo emits (dse/jsonio.hpp reads it back; no escaped quotes, no nesting
// beyond one object). Binary operand panels and int64 accumulator panels
// travel as lowercase-hex strings so served results are bit-identical to
// direct library calls by construction (no float round trips).
//
// Requests (client -> server), one JSON object per frame:
//   {"op": "ping", "id": N}
//   {"op": "stats", "id": N}
//   {"op": "shutdown", "id": N}
//   {"op": "characterize", "id": N, "key": "<dse config key>",
//    "deadline_ms": D,                         // optional, < 0 = none
//    "exhaustive_bits": E, "samples": S, "seed": R, "analytic": B}
//                                              // optional EvalOptions knobs
//   {"op": "infer", "id": N, "backend": "<name or dse:<key>>", "swap": B,
//    "m": M, "k": K, "n": Nc, "a": "<hex, M*K bytes>", "b": "<hex, K*Nc>",
//    "deadline_ms": D}
//   {"op": "evaluate-batch", "id": N, "keys": ["<key>", ...],
//    "deadline_ms": D, ...}                     // same EvalOptions knobs as
//                                              // characterize, applied to
//                                              // every key in the batch
//
// evaluate-batch is the farm transport (dse::EvalFarm): M keys in one
// frame, answered by exactly M reply frames — one per key, each tagged
// {"key": "...", "index": i, "total": M} so ok / retry / error outcomes
// stay attributable per key. Replies may interleave with other clients'
// traffic in any order; each key rides the same single-flight
// characterize queue (coalescing, deadlines, backpressure included).
//
// Replies (server -> client) echo the request id:
//   {"id": N, "op": "...", "ok": true, ...}    // op-specific payload
//   {"id": N, "ok": false, "retry": true, "err": "busy"}   // backpressure:
//                                              // queue full, resubmit later
//   {"id": N, "ok": false, "err": "deadline"}  // expired before service
//   {"id": N, "ok": false, "err": "..."}       // parse/validation errors
//
// A characterize reply carries the full dse::Objectives vector in the
// EvalCache line dialect plus "cached" (served from the persistent cache)
// and "coalesced" (rode on another client's in-flight evaluation). An
// infer reply carries "acc": hex little-endian int64 accumulators (M*Nc
// words) and "batch_rows": the height of the merged GEMM panel it rode in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/evaluate.hpp"

namespace axmult::serve {

/// Protocol version, echoed by ping; bump on incompatible frame changes.
inline constexpr unsigned kProtocolVersion = 1;

/// Hard ceiling on one frame's payload (requests and replies alike). A
/// frame header announcing more than this is answered with an "oversized"
/// error and the connection is closed (the stream cannot be resynced).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

// ---- frame transport ------------------------------------------------------

enum class FrameStatus : std::uint8_t {
  kOk,         ///< one complete payload read
  kEof,        ///< clean close before a header byte
  kTruncated,  ///< peer closed mid-frame
  kOversized,  ///< header length exceeds `max_bytes`
  kError,      ///< socket error
};

/// Writes one length-prefixed frame; false on any socket error (the caller
/// treats the connection as dead). Safe from multiple threads only under
/// the caller's per-connection write lock.
[[nodiscard]] bool write_frame(int fd, const std::string& payload);

/// Reads one complete frame into `payload` (blocking).
[[nodiscard]] FrameStatus read_frame(int fd, std::string& payload,
                                     std::uint32_t max_bytes = kMaxFrameBytes);

// ---- hex codecs -----------------------------------------------------------

[[nodiscard]] std::string hex_encode(const std::uint8_t* data, std::size_t size);
[[nodiscard]] std::string hex_encode(const std::vector<std::uint8_t>& data);
/// False on odd length or non-hex characters.
[[nodiscard]] bool hex_decode(const std::string& hex, std::vector<std::uint8_t>& out);

/// int64 panels as hex of little-endian 8-byte words (exact round trip).
[[nodiscard]] std::string hex_encode_i64(const std::vector<std::int64_t>& data);
[[nodiscard]] bool hex_decode_i64(const std::string& hex, std::vector<std::int64_t>& out);

// ---- requests -------------------------------------------------------------

enum class Op : std::uint8_t { kPing, kStats, kShutdown, kCharacterize, kInfer, kEvaluateBatch };

[[nodiscard]] const char* op_name(Op op) noexcept;

struct Request {
  Op op = Op::kPing;
  std::uint64_t id = 0;
  double deadline_ms = -1.0;  ///< relative to arrival; < 0 = no deadline

  // characterize
  std::string key;  ///< dse::config_key string
  /// Optional overrides of the server's default EvalOptions (the uniform
  /// sweep knobs that enter the cache context). Negative = server default.
  long exhaustive_bits = -1;
  long long samples = -1;
  long long seed = -1;
  int analytic = -1;  ///< tri-state: -1 default, 0 off, 1 on
  /// Further overrides the farm needs so a worker's cache context matches
  /// the submitting search exactly; same tri-state convention.
  long long power_vectors = -1;
  int gaussian = -1;
  double gauss_mean_a = 0.0, gauss_sigma_a = 0.0;
  double gauss_mean_b = 0.0, gauss_sigma_b = 0.0;

  // evaluate-batch
  std::vector<std::string> keys;  ///< dse::config_key strings, >= 1

  // infer
  std::string backend;  ///< nn backend name or "dse:<config key>"
  bool swap = false;
  std::uint32_t m = 0, k = 0, n = 0;
  std::vector<std::uint8_t> a;  ///< row-major m x k
  std::vector<std::uint8_t> b;  ///< row-major k x n

  /// Applies the request's overrides onto the server defaults.
  [[nodiscard]] dse::EvalOptions eval_options(const dse::EvalOptions& defaults) const;
};

[[nodiscard]] std::string encode_request(const Request& req);
/// nullopt on malformed/unknown requests; `error` (optional) receives a
/// one-line reason suitable for the "err" reply field.
[[nodiscard]] std::optional<Request> parse_request(const std::string& json, std::string* error);

// ---- replies --------------------------------------------------------------

struct Reply {
  std::uint64_t id = 0;
  std::string op;
  bool ok = false;
  bool retry = false;  ///< backpressure: resubmit later
  std::string error;   ///< "deadline", "busy", parse/validation reasons

  // characterize payload
  bool has_objectives = false;
  dse::Objectives objectives;
  bool cached = false;
  bool coalesced = false;

  // evaluate-batch payload: which key of the batch this frame answers.
  // Present on every batch reply, including retry/error outcomes, so the
  // submitter can requeue or fall back per key.
  std::string key;
  std::uint32_t index = 0;
  std::uint32_t total = 0;

  // infer payload
  std::vector<std::int64_t> acc;  ///< row-major m x n accumulators
  std::uint32_t rows = 0, cols = 0;
  std::uint32_t batch_rows = 0;  ///< merged panel height this request rode in

  // ping / stats payload
  std::string payload;  ///< raw JSON fields (stats counters, version)

  /// The reply line as received — kept so callers can pull extra fields
  /// with dse::jsonio without re-encoding.
  std::string raw;
};

[[nodiscard]] std::string encode_reply(const Reply& reply);
[[nodiscard]] std::optional<Reply> parse_reply(const std::string& json);

[[nodiscard]] Reply error_reply(std::uint64_t id, const std::string& err);
[[nodiscard]] Reply retry_reply(std::uint64_t id);

}  // namespace axmult::serve
