#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace axmult::serve {

namespace {

int connect_once(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

std::optional<int> connect_with_retry(const std::string& socket_path, unsigned timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = connect_once(socket_path);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Client::Client(const std::string& socket_path) : fd_(connect_once(socket_path)) {
  if (fd_ < 0) {
    throw std::runtime_error("serve: cannot connect to '" + socket_path +
                             "': " + std::strerror(errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send(const Request& req) { return write_frame(fd_, encode_request(req)); }

std::optional<Reply> Client::recv() {
  std::string payload;
  if (read_frame(fd_, payload) != FrameStatus::kOk) return std::nullopt;
  return parse_reply(payload);
}

Reply Client::request(Request req) {
  if (req.id == 0) req.id = next_id();
  if (!send(req)) throw std::runtime_error("serve: connection lost on send");
  for (;;) {
    std::optional<Reply> reply = recv();
    if (!reply) throw std::runtime_error("serve: connection lost awaiting reply");
    if (reply->id == req.id || reply->id == 0) return *reply;
    // A reply for another in-flight id (pipelined misuse): skip it.
  }
}

bool Client::ping() {
  Request req;
  req.op = Op::kPing;
  return request(std::move(req)).ok;
}

std::string Client::stats_json() {
  Request req;
  req.op = Op::kStats;
  return request(std::move(req)).raw;
}

Reply Client::characterize(const std::string& key, double deadline_ms) {
  Request req;
  req.op = Op::kCharacterize;
  req.key = key;
  req.deadline_ms = deadline_ms;
  return request(std::move(req));
}

std::vector<Reply> Client::evaluate_batch(const std::vector<std::string>& keys,
                                          double deadline_ms) {
  Request req;
  req.op = Op::kEvaluateBatch;
  req.keys = keys;
  req.deadline_ms = deadline_ms;
  req.id = next_id();
  if (!send(req)) throw std::runtime_error("serve: connection lost on send");
  std::vector<Reply> replies(keys.size());
  std::vector<bool> got(keys.size(), false);
  for (std::size_t pending = keys.size(); pending > 0;) {
    std::optional<Reply> reply = recv();
    if (!reply) throw std::runtime_error("serve: connection lost awaiting batch replies");
    if (reply->id != req.id || reply->index >= keys.size() || got[reply->index]) continue;
    got[reply->index] = true;
    replies[reply->index] = std::move(*reply);
    --pending;
  }
  return replies;
}

Reply Client::infer(const std::string& backend, bool swap, std::uint32_t m, std::uint32_t k,
                    std::uint32_t n, const std::vector<std::uint8_t>& a,
                    const std::vector<std::uint8_t>& b, double deadline_ms) {
  Request req;
  req.op = Op::kInfer;
  req.backend = backend;
  req.swap = swap;
  req.m = m;
  req.k = k;
  req.n = n;
  req.a = a;
  req.b = b;
  req.deadline_ms = deadline_ms;
  return request(std::move(req));
}

bool Client::shutdown_server() {
  Request req;
  req.op = Op::kShutdown;
  return request(std::move(req)).ok;
}

}  // namespace axmult::serve
