#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "dse/jsonio.hpp"
#include "dse/space.hpp"
#include "serve/client.hpp"

namespace axmult::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct ClientTally {
  std::uint64_t requests = 0, ok = 0, retried = 0, deadline = 0, errors = 0;
  std::vector<double> latencies_ms;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::uint64_t stat_u64(const std::string& json, const char* field) {
  return static_cast<std::uint64_t>(dse::jsonio::find_number(json, field).value_or(0.0));
}

}  // namespace

std::vector<std::string> default_key_pool() {
  std::vector<dse::Config> configs;
  configs.push_back(dse::paper_ca(8));
  configs.push_back(dse::paper_cc(8));
  for (const bool carry_free : {false, true}) {
    dse::Config c = carry_free ? dse::paper_cc(8) : dse::paper_ca(8);
    c.trunc_lsbs = 2;
    configs.push_back(c);
    c.trunc_lsbs = 0;
    c.operand_swap = true;
    configs.push_back(c);
  }
  std::vector<std::string> keys;
  keys.reserve(configs.size());
  for (const dse::Config& c : configs) keys.push_back(dse::config_key(c));
  return keys;
}

ServerStats parse_server_stats(const std::string& json) {
  ServerStats s;
  s.connections = stat_u64(json, "connections");
  s.requests = stat_u64(json, "requests");
  s.parse_errors = stat_u64(json, "parse_errors");
  s.pings = stat_u64(json, "pings");
  s.characterize_requests = stat_u64(json, "characterize_requests");
  s.cache_hits = stat_u64(json, "cache_hits");
  s.coalesced = stat_u64(json, "coalesced");
  s.evaluations = stat_u64(json, "evaluations");
  s.infer_requests = stat_u64(json, "infer_requests");
  s.infer_rows = stat_u64(json, "infer_rows");
  s.gemm_batches = stat_u64(json, "gemm_batches");
  s.gemm_rows = stat_u64(json, "gemm_rows");
  s.merged_requests = stat_u64(json, "merged_requests");
  s.retries = stat_u64(json, "retries");
  s.deadline_expired = stat_u64(json, "deadline_expired");
  return s;
}

LoadgenReport run_loadgen(const LoadgenOptions& opts) {
  const std::vector<std::string> keys = opts.keys.empty() ? default_key_pool() : opts.keys;

  // One rhs panel shared by every client and request: the accelerator
  // serving pattern (shared weights, per-client activations) and the shape
  // that lets the batcher merge across clients.
  std::vector<std::uint8_t> b_panel(static_cast<std::size_t>(opts.infer_k) * opts.infer_n);
  {
    Xoshiro256 rng(derive_stream_seed(opts.seed, 0xB));
    for (auto& v : b_panel) v = static_cast<std::uint8_t>(rng.below(256));
  }

  Client control(opts.socket_path);  // throws when the daemon is unreachable
  LoadgenReport report;
  report.before = parse_server_stats(control.stats_json());

  std::vector<ClientTally> tallies(opts.clients);
  std::vector<std::thread> threads;
  threads.reserve(opts.clients);
  const auto start = Clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opts.duration_s));
  for (unsigned c = 0; c < opts.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      try {
        Client client(opts.socket_path);
        Xoshiro256 rng(derive_stream_seed(opts.seed, c + 1));
        std::vector<std::uint8_t> a_panel(static_cast<std::size_t>(opts.infer_m) *
                                          opts.infer_k);
        std::uint64_t sent = 0;
        while (Clock::now() < stop_at) {
          if (opts.rate_per_client > 0.0) {
            // Open-loop schedule: request `sent` fires at start + sent/rate;
            // when behind, fire immediately to catch up.
            const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                         std::chrono::duration<double>(
                                             static_cast<double>(sent) / opts.rate_per_client));
            if (due > stop_at) break;
            std::this_thread::sleep_until(due);
          }
          ++sent;
          const bool infer = rng.uniform01() < opts.infer_fraction;
          const auto t0 = Clock::now();
          Reply reply;
          if (infer) {
            for (auto& v : a_panel) v = static_cast<std::uint8_t>(rng.below(256));
            reply = client.infer(opts.backend, false, opts.infer_m, opts.infer_k, opts.infer_n,
                                 a_panel, b_panel);
          } else {
            reply = client.characterize(keys[rng.below(keys.size())]);
          }
          const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
          ++tally.requests;
          tally.latencies_ms.push_back(ms);
          if (reply.ok) ++tally.ok;
          else if (reply.retry) ++tally.retried;
          else if (reply.error == "deadline") ++tally.deadline;
          else ++tally.errors;
        }
      } catch (const std::exception&) {
        ++tally.errors;  // connection-level failure ends this client
      }
    });
  }
  for (std::thread& t : threads) t.join();
  report.duration_s = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.requests += tally.requests;
    report.ok += tally.ok;
    report.retried += tally.retried;
    report.deadline += tally.deadline;
    report.errors += tally.errors;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(), tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_ms = percentile(latencies, 0.50);
  report.p90_ms = percentile(latencies, 0.90);
  report.p99_ms = percentile(latencies, 0.99);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();
  report.rps = report.duration_s > 0.0
                   ? static_cast<double>(report.requests) / report.duration_s
                   : 0.0;

  report.after = parse_server_stats(control.stats_json());
  const auto delta = [&](std::uint64_t ServerStats::*field) {
    return report.after.*field - report.before.*field;
  };
  const std::uint64_t characterize = delta(&ServerStats::characterize_requests);
  if (characterize > 0) {
    report.cache_hit_rate =
        static_cast<double>(delta(&ServerStats::cache_hits)) / static_cast<double>(characterize);
    report.coalesce_rate =
        static_cast<double>(delta(&ServerStats::coalesced)) / static_cast<double>(characterize);
    report.reuse_rate = report.cache_hit_rate + report.coalesce_rate;
  }
  const std::uint64_t batches = delta(&ServerStats::gemm_batches);
  if (batches > 0) {
    report.batch_fill_requests = static_cast<double>(delta(&ServerStats::merged_requests)) /
                                 static_cast<double>(batches);
    report.batch_fill_rows =
        static_cast<double>(delta(&ServerStats::gemm_rows)) / static_cast<double>(batches);
  }
  return report;
}

std::string loadgen_json(const LoadgenOptions& opts, const LoadgenReport& report,
                         const std::string& provenance) {
  const ServerStats& a = report.after;
  const ServerStats& b = report.before;
  std::ostringstream os;
  os << "{\n";
  if (!provenance.empty()) os << "  " << provenance << ",\n";
  os << "  \"clients\": " << opts.clients << ",\n"
     << "  \"duration_s\": " << fmt_double(report.duration_s) << ",\n"
     << "  \"rate_per_client\": " << fmt_double(opts.rate_per_client) << ",\n"
     << "  \"infer_fraction\": " << fmt_double(opts.infer_fraction) << ",\n"
     << "  \"infer_shape\": [" << opts.infer_m << ", " << opts.infer_k << ", " << opts.infer_n
     << "],\n"
     << "  \"backend\": \"" << opts.backend << "\",\n"
     << "  \"requests\": " << report.requests << ",\n"
     << "  \"ok\": " << report.ok << ",\n"
     << "  \"retried\": " << report.retried << ",\n"
     << "  \"deadline\": " << report.deadline << ",\n"
     << "  \"errors\": " << report.errors << ",\n"
     << "  \"rps\": " << fmt_double(report.rps) << ",\n"
     << "  \"p50_ms\": " << fmt_double(report.p50_ms) << ",\n"
     << "  \"p90_ms\": " << fmt_double(report.p90_ms) << ",\n"
     << "  \"p99_ms\": " << fmt_double(report.p99_ms) << ",\n"
     << "  \"max_ms\": " << fmt_double(report.max_ms) << ",\n"
     << "  \"cache_hit_rate\": " << fmt_double(report.cache_hit_rate) << ",\n"
     << "  \"coalesce_rate\": " << fmt_double(report.coalesce_rate) << ",\n"
     << "  \"reuse_rate\": " << fmt_double(report.reuse_rate) << ",\n"
     << "  \"batch_fill_requests\": " << fmt_double(report.batch_fill_requests) << ",\n"
     << "  \"batch_fill_rows\": " << fmt_double(report.batch_fill_rows) << ",\n"
     << "  \"server_evaluations\": " << (a.evaluations - b.evaluations) << ",\n"
     << "  \"server_gemm_batches\": " << (a.gemm_batches - b.gemm_batches) << ",\n"
     << "  \"server_retries\": " << (a.retries - b.retries) << "\n"
     << "}\n";
  return os.str();
}

}  // namespace axmult::serve
