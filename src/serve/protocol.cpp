#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "dse/cache.hpp"
#include "dse/jsonio.hpp"

namespace axmult::serve {

namespace {

/// Sends all of `data`, riding out EINTR/partial writes. MSG_NOSIGNAL so a
/// vanished peer surfaces as EPIPE instead of killing the process.
bool send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `size` bytes; returns the number actually read (short on
/// EOF, negative errno-style on error).
ssize_t recv_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

// ---- frame transport ------------------------------------------------------

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.push_back(static_cast<char>(len & 0xFF));
  buf.push_back(static_cast<char>((len >> 8) & 0xFF));
  buf.push_back(static_cast<char>((len >> 16) & 0xFF));
  buf.push_back(static_cast<char>((len >> 24) & 0xFF));
  buf += payload;
  return send_all(fd, buf.data(), buf.size());
}

FrameStatus read_frame(int fd, std::string& payload, std::uint32_t max_bytes) {
  std::uint8_t header[4];
  const ssize_t h = recv_all(fd, header, sizeof(header));
  if (h < 0) return FrameStatus::kError;
  if (h == 0) return FrameStatus::kEof;
  if (h < 4) return FrameStatus::kTruncated;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > max_bytes) return FrameStatus::kOversized;
  payload.resize(len);
  if (len == 0) return FrameStatus::kOk;
  const ssize_t n = recv_all(fd, payload.data(), len);
  if (n < 0) return FrameStatus::kError;
  if (static_cast<std::uint32_t>(n) < len) return FrameStatus::kTruncated;
  return FrameStatus::kOk;
}

// ---- hex codecs -----------------------------------------------------------

std::string hex_encode(const std::uint8_t* data, std::size_t size) {
  std::string out(size * 2, '0');
  for (std::size_t i = 0; i < size; ++i) {
    out[2 * i] = kHexDigits[data[i] >> 4];
    out[2 * i + 1] = kHexDigits[data[i] & 0xF];
  }
  return out;
}

std::string hex_encode(const std::vector<std::uint8_t>& data) {
  return hex_encode(data.data(), data.size());
}

bool hex_decode(const std::string& hex, std::vector<std::uint8_t>& out) {
  if (hex.size() % 2 != 0) return false;
  out.resize(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_nibble(hex[2 * i]);
    const int lo = hex_nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

std::string hex_encode_i64(const std::vector<std::int64_t>& data) {
  std::string out(data.size() * 16, '0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto word = static_cast<std::uint64_t>(data[i]);
    for (unsigned byte = 0; byte < 8; ++byte) {  // little-endian byte order
      const auto v = static_cast<std::uint8_t>(word >> (8 * byte));
      out[16 * i + 2 * byte] = kHexDigits[v >> 4];
      out[16 * i + 2 * byte + 1] = kHexDigits[v & 0xF];
    }
  }
  return out;
}

bool hex_decode_i64(const std::string& hex, std::vector<std::int64_t>& out) {
  std::vector<std::uint8_t> bytes;
  if (!hex_decode(hex, bytes) || bytes.size() % 8 != 0) return false;
  out.resize(bytes.size() / 8);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t word = 0;
    for (unsigned byte = 0; byte < 8; ++byte) {
      word |= static_cast<std::uint64_t>(bytes[8 * i + byte]) << (8 * byte);
    }
    out[i] = static_cast<std::int64_t>(word);
  }
  return true;
}

// ---- requests -------------------------------------------------------------

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kCharacterize: return "characterize";
    case Op::kInfer: return "infer";
    case Op::kEvaluateBatch: return "evaluate-batch";
  }
  return "?";
}

dse::EvalOptions Request::eval_options(const dse::EvalOptions& defaults) const {
  dse::EvalOptions opts = defaults;
  if (exhaustive_bits >= 0) opts.exhaustive_bits = static_cast<unsigned>(exhaustive_bits);
  if (samples >= 0) opts.samples = static_cast<std::uint64_t>(samples);
  if (seed >= 0) opts.seed = static_cast<std::uint64_t>(seed);
  if (analytic >= 0) opts.analytic = analytic != 0;
  if (power_vectors >= 0) opts.power_vectors = static_cast<std::uint64_t>(power_vectors);
  if (gaussian >= 0) {
    opts.gaussian = gaussian != 0;
    if (opts.gaussian) {
      opts.mean_a = gauss_mean_a;
      opts.sigma_a = gauss_sigma_a;
      opts.mean_b = gauss_mean_b;
      opts.sigma_b = gauss_sigma_b;
    }
  }
  return opts;
}

std::string encode_request(const Request& req) {
  std::ostringstream os;
  os << "{\"proto\": " << kProtocolVersion << ", \"op\": \"" << op_name(req.op)
     << "\", \"id\": " << req.id;
  if (req.deadline_ms >= 0.0) os << ", \"deadline_ms\": " << fmt_double(req.deadline_ms);
  const auto eval_overrides = [&] {
    if (req.exhaustive_bits >= 0) os << ", \"exhaustive_bits\": " << req.exhaustive_bits;
    if (req.samples >= 0) os << ", \"samples\": " << req.samples;
    if (req.seed >= 0) os << ", \"seed\": " << req.seed;
    if (req.analytic >= 0) os << ", \"analytic\": " << (req.analytic != 0 ? "true" : "false");
    if (req.power_vectors >= 0) os << ", \"power_vectors\": " << req.power_vectors;
    if (req.gaussian >= 0) {
      os << ", \"gaussian\": " << (req.gaussian != 0 ? "true" : "false");
      if (req.gaussian != 0) {
        os << ", \"mean_a\": " << fmt_double(req.gauss_mean_a)
           << ", \"sigma_a\": " << fmt_double(req.gauss_sigma_a)
           << ", \"mean_b\": " << fmt_double(req.gauss_mean_b)
           << ", \"sigma_b\": " << fmt_double(req.gauss_sigma_b);
      }
    }
  };
  if (req.op == Op::kCharacterize) {
    os << ", \"key\": \"" << req.key << "\"";
    eval_overrides();
  } else if (req.op == Op::kEvaluateBatch) {
    os << ", \"keys\": [";
    for (std::size_t i = 0; i < req.keys.size(); ++i) {
      os << (i ? ", " : "") << "\"" << req.keys[i] << "\"";
    }
    os << "]";
    eval_overrides();
  } else if (req.op == Op::kInfer) {
    os << ", \"backend\": \"" << req.backend << "\", \"swap\": " << (req.swap ? "true" : "false")
       << ", \"m\": " << req.m << ", \"k\": " << req.k << ", \"n\": " << req.n << ", \"a\": \""
       << hex_encode(req.a) << "\", \"b\": \"" << hex_encode(req.b) << "\"";
  }
  os << "}";
  return os.str();
}

std::optional<Request> parse_request(const std::string& json, std::string* error) {
  const auto fail = [&](const char* why) -> std::optional<Request> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const auto op = dse::jsonio::find_string(json, "op");
  if (!op) return fail("missing op");
  Request req;
  if (*op == "ping") req.op = Op::kPing;
  else if (*op == "stats") req.op = Op::kStats;
  else if (*op == "shutdown") req.op = Op::kShutdown;
  else if (*op == "characterize") req.op = Op::kCharacterize;
  else if (*op == "infer") req.op = Op::kInfer;
  else if (*op == "evaluate-batch") req.op = Op::kEvaluateBatch;
  else return fail("unknown op");
  req.id = static_cast<std::uint64_t>(dse::jsonio::find_number(json, "id").value_or(0.0));
  req.deadline_ms = dse::jsonio::find_number(json, "deadline_ms").value_or(-1.0);
  const auto eval_overrides = [&] {
    if (const auto v = dse::jsonio::find_number(json, "exhaustive_bits")) {
      req.exhaustive_bits = static_cast<long>(*v);
    }
    if (const auto v = dse::jsonio::find_number(json, "samples")) {
      req.samples = static_cast<long long>(*v);
    }
    if (const auto v = dse::jsonio::find_number(json, "seed")) {
      req.seed = static_cast<long long>(*v);
    }
    if (const auto v = dse::jsonio::find_bool(json, "analytic")) req.analytic = *v ? 1 : 0;
    if (const auto v = dse::jsonio::find_number(json, "power_vectors")) {
      req.power_vectors = static_cast<long long>(*v);
    }
    if (const auto v = dse::jsonio::find_bool(json, "gaussian")) {
      req.gaussian = *v ? 1 : 0;
      req.gauss_mean_a = dse::jsonio::find_number(json, "mean_a").value_or(0.0);
      req.gauss_sigma_a = dse::jsonio::find_number(json, "sigma_a").value_or(0.0);
      req.gauss_mean_b = dse::jsonio::find_number(json, "mean_b").value_or(0.0);
      req.gauss_sigma_b = dse::jsonio::find_number(json, "sigma_b").value_or(0.0);
    }
  };
  if (req.op == Op::kCharacterize) {
    const auto key = dse::jsonio::find_string(json, "key");
    if (!key || key->empty()) return fail("characterize without key");
    req.key = *key;
    eval_overrides();
  } else if (req.op == Op::kEvaluateBatch) {
    req.keys = dse::jsonio::find_string_array(json, "keys");
    if (req.keys.empty()) return fail("evaluate-batch without keys");
    eval_overrides();
  } else if (req.op == Op::kInfer) {
    const auto backend = dse::jsonio::find_string(json, "backend");
    if (!backend || backend->empty()) return fail("infer without backend");
    req.backend = *backend;
    req.swap = dse::jsonio::find_bool(json, "swap").value_or(false);
    const auto m = dse::jsonio::find_number(json, "m");
    const auto k = dse::jsonio::find_number(json, "k");
    const auto n = dse::jsonio::find_number(json, "n");
    if (!m || !k || !n || *m < 1 || *k < 1 || *n < 1) return fail("infer with bad shape");
    req.m = static_cast<std::uint32_t>(*m);
    req.k = static_cast<std::uint32_t>(*k);
    req.n = static_cast<std::uint32_t>(*n);
    const auto a_hex = dse::jsonio::find_string(json, "a");
    const auto b_hex = dse::jsonio::find_string(json, "b");
    if (!a_hex || !b_hex) return fail("infer without operand panels");
    if (!hex_decode(*a_hex, req.a) || !hex_decode(*b_hex, req.b)) {
      return fail("infer with malformed hex panel");
    }
    if (req.a.size() != static_cast<std::size_t>(req.m) * req.k ||
        req.b.size() != static_cast<std::size_t>(req.k) * req.n) {
      return fail("infer panel size mismatch");
    }
  }
  return req;
}

// ---- replies --------------------------------------------------------------

std::string encode_reply(const Reply& reply) {
  std::ostringstream os;
  os << "{\"id\": " << reply.id;
  if (!reply.op.empty()) os << ", \"op\": \"" << reply.op << "\"";
  os << ", \"ok\": " << (reply.ok ? "true" : "false");
  if (reply.retry) os << ", \"retry\": true";
  if (!reply.error.empty()) os << ", \"err\": \"" << reply.error << "\"";
  if (reply.op == "evaluate-batch") {
    // Every batch reply — success, retry or error — names its key so the
    // submitter can attribute the outcome.
    os << ", \"key\": \"" << reply.key << "\", \"index\": " << reply.index
       << ", \"total\": " << reply.total;
  }
  if (reply.has_objectives) {
    os << ", \"cached\": " << (reply.cached ? "true" : "false")
       << ", \"coalesced\": " << (reply.coalesced ? "true" : "false") << ", "
       << dse::EvalCache::serialize_objectives(reply.objectives);
  }
  if (reply.ok && reply.op == "infer") {
    os << ", \"rows\": " << reply.rows << ", \"cols\": " << reply.cols
       << ", \"batch_rows\": " << reply.batch_rows << ", \"acc\": \"" << hex_encode_i64(reply.acc)
       << "\"";
  }
  if (!reply.payload.empty()) os << ", " << reply.payload;
  os << "}";
  return os.str();
}

std::optional<Reply> parse_reply(const std::string& json) {
  const auto ok = dse::jsonio::find_bool(json, "ok");
  if (!ok) return std::nullopt;
  Reply reply;
  reply.raw = json;
  reply.ok = *ok;
  reply.id = static_cast<std::uint64_t>(dse::jsonio::find_number(json, "id").value_or(0.0));
  reply.op = dse::jsonio::find_string(json, "op").value_or("");
  reply.retry = dse::jsonio::find_bool(json, "retry").value_or(false);
  reply.error = dse::jsonio::find_string(json, "err").value_or("");
  if (reply.op == "evaluate-batch") {
    reply.key = dse::jsonio::find_string(json, "key").value_or("");
    reply.index =
        static_cast<std::uint32_t>(dse::jsonio::find_number(json, "index").value_or(0.0));
    reply.total =
        static_cast<std::uint32_t>(dse::jsonio::find_number(json, "total").value_or(0.0));
  }
  if (const auto cached = dse::jsonio::find_bool(json, "cached")) {
    reply.cached = *cached;
    reply.coalesced = dse::jsonio::find_bool(json, "coalesced").value_or(false);
    if (const auto obj = dse::EvalCache::parse_objectives(json)) {
      reply.has_objectives = true;
      reply.objectives = *obj;
    }
  }
  if (reply.ok && reply.op == "infer") {
    reply.rows = static_cast<std::uint32_t>(dse::jsonio::find_number(json, "rows").value_or(0.0));
    reply.cols = static_cast<std::uint32_t>(dse::jsonio::find_number(json, "cols").value_or(0.0));
    reply.batch_rows =
        static_cast<std::uint32_t>(dse::jsonio::find_number(json, "batch_rows").value_or(0.0));
    const auto acc_hex = dse::jsonio::find_string(json, "acc");
    if (!acc_hex || !hex_decode_i64(*acc_hex, reply.acc)) return std::nullopt;
  }
  return reply;
}

Reply error_reply(std::uint64_t id, const std::string& err) {
  Reply reply;
  reply.id = id;
  reply.ok = false;
  reply.error = err;
  return reply;
}

Reply retry_reply(std::uint64_t id) {
  Reply reply;
  reply.id = id;
  reply.ok = false;
  reply.retry = true;
  reply.error = "busy";
  return reply;
}

}  // namespace axmult::serve
