// Corpus-level golden regression for the JPEG workload: the end-to-end
// rate/distortion behavior of the codec frozen into a checked-in file, so
// any later change to the DCT, the quantizer, the entropy coder or a
// multiplier model that shifts a single reconstructed pixel or stream
// byte fails loudly with the exact (image, quality, backend) triple.
//
// File format (the repo's hand-written JSON-lines dialect):
//   line 1: {"subject": "jpeg-corpus", "version": 1, "entries": N}
//   then N lines of {"image": "...", "quality": Q, "backend": "...",
//                    "sse": S, "bytes": B, "ssim": X}
// sse (integer sum of squared pixel differences vs the source) and bytes
// are exact integers; ssim is arithmetic-only (apps::ssim) — all three
// are bit-reproducible, so replay compares exactly (ssim to 1e-12). The
// corpus images themselves are generated with pure integer arithmetic:
// no libm call stands between a platform and the frozen numbers.
//
// Regenerate with `axjpeg golden --emit tests/golden/jpeg/corpus.golden`
// after an intentional behavior change (see docs/JPEG.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/image.hpp"

namespace axmult::jpeg {

struct GoldenEntry {
  std::string image;    ///< corpus image name
  int quality = 0;      ///< IJG quality factor
  std::string backend;  ///< registry backend on all four stages (unswapped)
  std::uint64_t sse = 0;    ///< sum of squared pixel errors vs the source
  std::uint64_t bytes = 0;  ///< finished JFIF stream size
  double ssim = 0.0;        ///< apps::ssim vs the source
};

struct NamedImage {
  std::string name;
  apps::Image image;
};

/// The checked-in corpus: small integer-procedural scenes covering smooth
/// gradients, hard edges, fine texture and impulse noise.
[[nodiscard]] const std::vector<NamedImage>& golden_corpus();

/// Qualities and backends the golden file freezes (crossed with every
/// corpus image).
[[nodiscard]] const std::vector<int>& golden_qualities();
[[nodiscard]] const std::vector<std::string>& golden_backends();

/// Round-trips the whole corpus through the current codec: one entry per
/// (image, quality, backend).
[[nodiscard]] std::vector<GoldenEntry> compute_golden_entries(unsigned threads = 0);

void write_golden_corpus(const std::vector<GoldenEntry>& entries, const std::string& path);

/// Throws std::runtime_error on unreadable or malformed files.
[[nodiscard]] std::vector<GoldenEntry> read_golden_corpus(const std::string& path);

/// Recomputes every entry of the file against the current codec; returns
/// a failure description naming the first drifting triple and metric, or
/// nullopt when everything matches.
[[nodiscard]] std::optional<std::string> replay_golden_corpus(const std::string& path,
                                                              unsigned threads = 0);

}  // namespace axmult::jpeg
