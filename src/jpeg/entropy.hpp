// Baseline-JPEG entropy layer: zigzag scan, DC differential + AC
// run-length coding, and the Annex-K Huffman code tables over a byte-
// stuffed MSB-first bitstream.
//
// This layer is exactly invertible by construction — decode_block()
// returns the encoder's quantized coefficients bit-for-bit, which is what
// makes the corpus golden values (and the rate side of the R-D study) a
// pure function of the quantized coefficients.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "jpeg/core.hpp"

namespace axmult::jpeg {

/// Zigzag position -> natural (row-major) index, ITU-T T.81 Figure 5.
[[nodiscard]] const std::array<std::uint8_t, 64>& zigzag_order();

/// Natural-order block -> zigzag-ordered coefficients and back.
[[nodiscard]] std::array<int, 64> to_zigzag(const Block& natural);
[[nodiscard]] Block from_zigzag(const std::array<int, 64>& zz);

/// MSB-first bit writer with JPEG byte stuffing (0x00 after every 0xFF in
/// the entropy-coded segment). finish() pads the tail with 1-bits.
class BitWriter {
 public:
  void put(std::uint32_t bits, unsigned count);
  [[nodiscard]] std::vector<std::uint8_t> finish();
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return out_; }

 private:
  std::vector<std::uint8_t> out_;
  std::uint32_t acc_ = 0;
  unsigned filled_ = 0;
};

/// MSB-first bit reader over an entropy-coded segment; un-stuffs 0xFF 0x00
/// pairs. Reading past the end yields 1-bits (the encoder's padding), and
/// `overrun()` reports whether that happened beyond the final pad byte.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::uint32_t get(unsigned count);
  [[nodiscard]] std::uint32_t get_bit() { return get(1); }
  [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }
  [[nodiscard]] bool overrun() const noexcept { return overrun_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t acc_ = 0;
  unsigned filled_ = 0;
  bool overrun_ = false;
};

/// One Huffman code table: the (bits, vals) spec form plus the canonical
/// encode map and the length-indexed decode arrays built from it.
class HuffTable {
 public:
  HuffTable(const std::array<std::uint8_t, 16>& bits, std::vector<std::uint8_t> vals);

  /// The Annex-K tables (K.3.3.1/K.3.3.2), shared immutable instances.
  [[nodiscard]] static const HuffTable& dc_luma();
  [[nodiscard]] static const HuffTable& ac_luma();
  [[nodiscard]] static const HuffTable& dc_chroma();
  [[nodiscard]] static const HuffTable& ac_chroma();

  [[nodiscard]] const std::array<std::uint8_t, 16>& bits() const noexcept { return bits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& vals() const noexcept { return vals_; }

  /// Canonical code / code length of a symbol (length 0 = not in table).
  [[nodiscard]] std::uint16_t code(std::uint8_t symbol) const noexcept {
    return code_[symbol];
  }
  [[nodiscard]] std::uint8_t length(std::uint8_t symbol) const noexcept {
    return length_[symbol];
  }

  void encode(BitWriter& out, std::uint8_t symbol) const;
  /// Next symbol off the bitstream; throws std::runtime_error on a code
  /// outside the table (corrupt stream).
  [[nodiscard]] std::uint8_t decode(BitReader& in) const;

 private:
  std::array<std::uint8_t, 16> bits_;
  std::vector<std::uint8_t> vals_;
  std::array<std::uint16_t, 256> code_{};
  std::array<std::uint8_t, 256> length_{};
  // Canonical decode state, indexed by code length - 1.
  std::array<std::int32_t, 16> min_code_{};
  std::array<std::int32_t, 16> max_code_{};  ///< -1 when no codes at this length
  std::array<std::int32_t, 16> val_ptr_{};
};

/// Magnitude category of a coefficient value (number of bits of |v|).
[[nodiscard]] unsigned magnitude_category(int v) noexcept;

/// Encodes one quantized natural-order block: DC differential against
/// `dc_pred` (updated), AC (run, size) pairs with ZRL/EOB.
void encode_block(BitWriter& out, const Block& quantized, int& dc_pred, const HuffTable& dc,
                  const HuffTable& ac);

/// Exact inverse of encode_block. Throws std::runtime_error on streams
/// that do not decode to a valid block.
[[nodiscard]] Block decode_block(BitReader& in, int& dc_pred, const HuffTable& dc,
                                 const HuffTable& ac);

}  // namespace axmult::jpeg
