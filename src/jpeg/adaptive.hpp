// The JPEG encoder as an adaptive-precision tenant: stripes of block rows
// are transformed at the rung an adapt::RungGovernor selects, with a
// PSNR-drift shadow monitor as the SLO.
//
// Monitor: for a deterministic probe subset of each stripe's blocks the
// encoder re-derives the quantized coefficients through the exact backend
// (the shadow) and reconstructs both coefficient sets through the exact
// dequantize + IDCT — i.e. it compares what a receiver would decode from
// the approximate encode against what it would decode from the exact
// encode. The drift estimate is that reconstruction pair's normalized MSE
// (mse / 255^2); an SLO of "probe PSNR >= P dB" is the policy threshold
// slo = 10^(-P/10). Probes come from one Xoshiro256 stream derived
// seed -> stripe, so the whole adaptive run is bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "adapt/tenant.hpp"
#include "apps/image.hpp"
#include "jpeg/codec.hpp"

namespace axmult::jpeg {

struct AdaptiveOptions {
  double slo_psnr_db = 38.0;       ///< probe-PSNR floor vs the exact shadow
  std::size_t stripe_block_rows = 2;  ///< reconfiguration granularity
  std::size_t probe_blocks = 4;    ///< shadow-monitored blocks per stripe
  std::uint64_t seed = 1;          ///< probe-selection stream seed
  adapt::PolicyConfig policy;      ///< slo is overwritten from slo_psnr_db
};

/// Normalized-MSE policy threshold of a PSNR floor in dB.
[[nodiscard]] inline double slo_from_psnr(double psnr_db) noexcept {
  return std::pow(10.0, -psnr_db / 10.0);
}

struct AdaptiveResult {
  std::vector<std::uint8_t> bytes;  ///< the finished JFIF stream
  std::vector<Block> blocks;        ///< quantized coefficients as encoded
  adapt::Report report;             ///< ladder/swap/MAC/drift ledger
  EncodeStats stats;                ///< lookups actually spent (recomputes included)
};

/// Adaptive encode of one image at `quality`, amortizing the ledger over
/// one image. The ladder's swap flag is not used — JPEG stages run with
/// the rung backend unswapped (use CodecPlan overrides for swap studies).
[[nodiscard]] AdaptiveResult encode_adaptive(const apps::Image& image, int quality,
                                             const adapt::Ladder& ladder,
                                             const AdaptiveOptions& options);

}  // namespace axmult::jpeg
