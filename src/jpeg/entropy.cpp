#include "jpeg/entropy.hpp"

#include <stdexcept>

namespace axmult::jpeg {

namespace {

constexpr std::array<std::uint8_t, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// Annex K.3.3.1/K.3.3.2 code table specs.
constexpr std::array<std::uint8_t, 16> kDcLumaBits = {0, 1, 5, 1, 1, 1, 1, 1,
                                                      1, 0, 0, 0, 0, 0, 0, 0};
constexpr std::array<std::uint8_t, 16> kDcChromaBits = {0, 3, 1, 1, 1, 1, 1, 1,
                                                        1, 1, 1, 0, 0, 0, 0, 0};
const std::vector<std::uint8_t> kDcVals = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};

constexpr std::array<std::uint8_t, 16> kAcLumaBits = {0, 2, 1, 3, 3, 2, 4, 3,
                                                      5, 5, 4, 4, 0, 0, 1, 0x7d};
const std::vector<std::uint8_t> kAcLumaVals = {
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51,
    0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1,
    0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18,
    0x19, 0x1a, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57,
    0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92,
    0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
    0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3,
    0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8,
    0xd9, 0xda, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2,
    0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa};

constexpr std::array<std::uint8_t, 16> kAcChromaBits = {0, 2, 1, 2, 4, 4, 3, 4,
                                                        7, 5, 4, 4, 0, 1, 2, 0x77};
const std::vector<std::uint8_t> kAcChromaVals = {
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07,
    0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09,
    0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25,
    0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38,
    0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56,
    0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
    0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
    0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba,
    0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6,
    0xd7, 0xd8, 0xd9, 0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2,
    0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa};

/// Low `size` bits of the standard coefficient encoding: v itself when
/// positive, v - 1 (i.e. ones' complement of |v|) when negative.
std::uint32_t coefficient_bits(int v, unsigned size) noexcept {
  const int raw = v >= 0 ? v : v - 1;
  return static_cast<std::uint32_t>(raw) & ((1u << size) - 1u);
}

/// Inverse: extends `bits` of width `size` back to the signed value.
int extend_coefficient(std::uint32_t bits, unsigned size) noexcept {
  if (size == 0) return 0;
  const std::uint32_t half = 1u << (size - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - static_cast<int>((half << 1) - 1);
}

}  // namespace

const std::array<std::uint8_t, 64>& zigzag_order() { return kZigzag; }

std::array<int, 64> to_zigzag(const Block& natural) {
  std::array<int, 64> zz{};
  for (std::size_t i = 0; i < 64; ++i) zz[i] = natural[kZigzag[i]];
  return zz;
}

Block from_zigzag(const std::array<int, 64>& zz) {
  Block natural{};
  for (std::size_t i = 0; i < 64; ++i) natural[kZigzag[i]] = zz[i];
  return natural;
}

void BitWriter::put(std::uint32_t bits, unsigned count) {
  // Accumulate MSB-first; flush whole bytes with 0xFF stuffing.
  acc_ = (acc_ << count) | (bits & ((count < 32 ? (1u << count) : 0u) - 1u));
  filled_ += count;
  while (filled_ >= 8) {
    const auto byte = static_cast<std::uint8_t>((acc_ >> (filled_ - 8)) & 0xFFu);
    out_.push_back(byte);
    if (byte == 0xFF) out_.push_back(0x00);
    filled_ -= 8;
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (filled_ > 0) put(0xFFu, 8 - filled_);  // pad with 1-bits to a byte edge
  return std::move(out_);
}

std::uint32_t BitReader::get(unsigned count) {
  while (filled_ < count) {
    std::uint8_t byte = 0xFF;  // past-the-end reads see the pad value
    if (pos_ < size_) {
      byte = data_[pos_++];
      if (byte == 0xFF) {
        if (pos_ < size_ && data_[pos_] == 0x00) {
          ++pos_;  // un-stuff
        } else {
          // A marker inside entropy data (or a truncated stream): stop
          // consuming and report the overrun.
          --pos_;
          overrun_ = true;
        }
      }
    } else {
      overrun_ = true;
    }
    acc_ = (acc_ << 8) | byte;
    filled_ += 8;
  }
  const std::uint32_t value = (acc_ >> (filled_ - count)) & ((count < 32 ? (1u << count) : 0u) - 1u);
  filled_ -= count;
  return value;
}

HuffTable::HuffTable(const std::array<std::uint8_t, 16>& bits, std::vector<std::uint8_t> vals)
    : bits_(bits), vals_(std::move(vals)) {
  std::size_t total = 0;
  for (const std::uint8_t n : bits_) total += n;
  if (total != vals_.size() || total > 256) {
    throw std::invalid_argument("HuffTable: bits/vals mismatch");
  }
  // Canonical code assignment (T.81 Annex C).
  std::uint32_t code = 0;
  std::size_t k = 0;
  for (unsigned len = 1; len <= 16; ++len) {
    min_code_[len - 1] = static_cast<std::int32_t>(code);
    val_ptr_[len - 1] = static_cast<std::int32_t>(k);
    if (bits_[len - 1] == 0) {
      max_code_[len - 1] = -1;
    } else {
      for (unsigned i = 0; i < bits_[len - 1]; ++i, ++k, ++code) {
        code_[vals_[k]] = static_cast<std::uint16_t>(code);
        length_[vals_[k]] = static_cast<std::uint8_t>(len);
      }
      max_code_[len - 1] = static_cast<std::int32_t>(code - 1);
    }
    code <<= 1;
  }
}

const HuffTable& HuffTable::dc_luma() {
  static const HuffTable t(kDcLumaBits, kDcVals);
  return t;
}
const HuffTable& HuffTable::ac_luma() {
  static const HuffTable t(kAcLumaBits, kAcLumaVals);
  return t;
}
const HuffTable& HuffTable::dc_chroma() {
  static const HuffTable t(kDcChromaBits, kDcVals);
  return t;
}
const HuffTable& HuffTable::ac_chroma() {
  static const HuffTable t(kAcChromaBits, kAcChromaVals);
  return t;
}

void HuffTable::encode(BitWriter& out, std::uint8_t symbol) const {
  const std::uint8_t len = length_[symbol];
  if (len == 0) throw std::invalid_argument("HuffTable: symbol not in table");
  out.put(code_[symbol], len);
}

std::uint8_t HuffTable::decode(BitReader& in) const {
  std::int32_t code = static_cast<std::int32_t>(in.get_bit());
  for (unsigned len = 1; len <= 16; ++len) {
    if (max_code_[len - 1] >= 0 && code <= max_code_[len - 1]) {
      return vals_[static_cast<std::size_t>(val_ptr_[len - 1] + code - min_code_[len - 1])];
    }
    code = (code << 1) | static_cast<std::int32_t>(in.get_bit());
  }
  throw std::runtime_error("HuffTable: invalid code in entropy stream");
}

unsigned magnitude_category(int v) noexcept {
  unsigned mag = static_cast<unsigned>(v < 0 ? -v : v);
  unsigned size = 0;
  while (mag != 0) {
    mag >>= 1;
    ++size;
  }
  return size;
}

void encode_block(BitWriter& out, const Block& quantized, int& dc_pred, const HuffTable& dc,
                  const HuffTable& ac) {
  const std::array<int, 64> zz = to_zigzag(quantized);
  // DC: differential, category + magnitude bits.
  const int diff = zz[0] - dc_pred;
  dc_pred = zz[0];
  const unsigned dc_size = magnitude_category(diff);
  dc.encode(out, static_cast<std::uint8_t>(dc_size));
  if (dc_size > 0) out.put(coefficient_bits(diff, dc_size), dc_size);
  // AC: (run, size) with ZRL (0xF0) for runs of 16 and EOB (0x00).
  unsigned run = 0;
  for (std::size_t i = 1; i < 64; ++i) {
    if (zz[i] == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      ac.encode(out, 0xF0);
      run -= 16;
    }
    const unsigned size = magnitude_category(zz[i]);
    ac.encode(out, static_cast<std::uint8_t>((run << 4) | size));
    out.put(coefficient_bits(zz[i], size), size);
    run = 0;
  }
  if (run > 0) ac.encode(out, 0x00);
}

Block decode_block(BitReader& in, int& dc_pred, const HuffTable& dc, const HuffTable& ac) {
  std::array<int, 64> zz{};
  const unsigned dc_size = dc.decode(in);
  if (dc_size > 11) throw std::runtime_error("decode_block: DC category out of range");
  const int diff = dc_size == 0 ? 0 : extend_coefficient(in.get(dc_size), dc_size);
  dc_pred += diff;
  zz[0] = dc_pred;
  for (std::size_t i = 1; i < 64;) {
    const std::uint8_t rs = ac.decode(in);
    if (rs == 0x00) break;  // EOB
    const unsigned run = rs >> 4;
    const unsigned size = rs & 0x0F;
    if (rs == 0xF0) {
      i += 16;
      if (i > 64) throw std::runtime_error("decode_block: ZRL overruns the block");
      continue;
    }
    if (size == 0 || size > 10) throw std::runtime_error("decode_block: AC size out of range");
    i += run;
    if (i >= 64) throw std::runtime_error("decode_block: AC run overruns the block");
    zz[i] = extend_coefficient(in.get(size), size);
    ++i;
  }
  return from_zigzag(zz);
}

}  // namespace axmult::jpeg
