// Fixed-point 8x8 forward/inverse DCT-II with every coefficient multiply
// routed through a selectable nn::MacBackend.
//
// Coefficients are scaled by 256 (max magnitude 128, so they fit the 8-bit
// coefficient port of every catalog multiplier); each 1-D pass rescales by
// a rounding >> 8. Intermediate values stay below 2^14, so the limb
// composition in nn::mul_wide never sees more than two 8-bit limbs per
// data operand — exactly the operand widths an 8x8-multiplier datapath
// would stream.
#pragma once

#include "jpeg/core.hpp"

namespace axmult::jpeg {

/// Coefficient scale of the integer DCT (and the per-pass rescale shift).
inline constexpr int kDctScale = 256;
inline constexpr unsigned kDctShift = 8;

/// c[u][x] = round(kDctScale * norm(u) * cos((2x+1) u pi / 16)), the matrix
/// shared by the forward (C * X * C^T) and inverse (C^T * Y * C) passes.
[[nodiscard]] const std::array<std::array<int, 8>, 8>& dct_coefficients();

/// Forward 2-D DCT of level-shifted samples (callers pass pixel-128, range
/// [-128, 127]). Output is the standard JPEG coefficient range (|DC| <=
/// 1024, |AC| < 1024 for the exact path).
[[nodiscard]] Block fdct(const Block& shifted, const StagePlan& stage,
                         std::uint64_t* lookups = nullptr);

/// Inverse 2-D DCT back to level-shifted samples (not clamped; callers add
/// 128 and clamp to [0, 255]).
[[nodiscard]] Block idct(const Block& freq, const StagePlan& stage,
                         std::uint64_t* lookups = nullptr);

}  // namespace axmult::jpeg
