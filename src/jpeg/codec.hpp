// Baseline-JPEG codec over grayscale images: level shift -> 8x8 fdct ->
// quantize -> zigzag/RLE/Huffman -> JFIF bitstream, and the exact inverse.
//
// The emitted stream is a real single-component baseline JPEG (SOI, APP0,
// DQT, SOF0, DHT, SOS, entropy-coded data, EOI) — decodable by any
// baseline decoder when the exact backend is selected, and always by the
// decoder here. The block-transform stages parallelize over block rows
// (common::parallel_chunks); every per-block result is written by index
// and every counter is an exact integer sum, so encode/decode are
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/image.hpp"
#include "jpeg/core.hpp"
#include "jpeg/quant.hpp"

namespace axmult::jpeg {

/// Routed-multiply (table-lookup) counts per encode stage — the MAC work
/// the energy model charges. Zero for plain-int stages.
struct EncodeStats {
  std::uint64_t blocks = 0;
  std::uint64_t fdct_lookups = 0;
  std::uint64_t quant_lookups = 0;
  [[nodiscard]] std::uint64_t lookups() const noexcept { return fdct_lookups + quant_lookups; }
};

struct DecodeStats {
  std::uint64_t blocks = 0;
  std::uint64_t dequant_lookups = 0;
  std::uint64_t idct_lookups = 0;
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return dequant_lookups + idct_lookups;
  }
};

/// Block grid of an image (ceil division; partial blocks pad by edge
/// replication on encode and are cropped on decode).
[[nodiscard]] inline unsigned blocks_across(unsigned pixels) noexcept {
  return (pixels + 7) / 8;
}

/// Extracts (level-shifted) block (bx, by), edge-replicating past the
/// right/bottom borders.
[[nodiscard]] Block extract_block(const apps::Image& image, unsigned bx, unsigned by);

/// fdct + quantize of the whole image: quantized natural-order coefficient
/// blocks in raster block order. The front half of encode(), exposed so
/// tests and the adaptive encoder can work at the coefficient level.
[[nodiscard]] std::vector<Block> encode_blocks(const apps::Image& image,
                                               const Quantizer& quant, const CodecPlan& plan,
                                               unsigned threads = 0,
                                               EncodeStats* stats = nullptr);

/// Entropy-encodes quantized coefficient blocks into a complete JFIF
/// stream (markers included). `steps` lands in the DQT segment.
[[nodiscard]] std::vector<std::uint8_t> entropy_encode(const std::vector<Block>& blocks,
                                                       unsigned width, unsigned height,
                                                       const std::array<int, 64>& steps);

/// Full encode: image -> JFIF bytes at `quality` (IJG scale, luma table).
[[nodiscard]] std::vector<std::uint8_t> encode(const apps::Image& image, int quality,
                                               const CodecPlan& plan, unsigned threads = 0,
                                               EncodeStats* stats = nullptr);

struct Decoded {
  apps::Image image;
  std::vector<Block> blocks;      ///< quantized coefficients, raster block order
  std::array<int, 64> steps{};    ///< quantization steps from the DQT segment
  unsigned width = 0;
  unsigned height = 0;
  DecodeStats stats;
};

/// Full decode of a stream produced by encode(). Throws std::runtime_error
/// (one line, never a crash) on malformed streams.
[[nodiscard]] Decoded decode(const std::vector<std::uint8_t>& bytes, const CodecPlan& plan,
                             unsigned threads = 0);

/// Rate of a finished stream in bits per pixel.
[[nodiscard]] inline double bits_per_pixel(std::size_t bytes, unsigned width,
                                           unsigned height) noexcept {
  return 8.0 * static_cast<double>(bytes) /
         (static_cast<double>(width) * static_cast<double>(height));
}

}  // namespace axmult::jpeg
