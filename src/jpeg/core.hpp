// Shared vocabulary of the baseline-JPEG workload (src/jpeg/).
//
// Every multiply of the pipeline — forward/inverse DCT coefficients,
// quantizer reciprocals, dequantizer steps — is routed through a
// StagePlan: a selectable nn::MacBackend plus the operand-swap flag.
// A null backend selects the plain int-multiply reference path; the
// differential tests pin the exact backend bit-identical to it.
#pragma once

#include <array>
#include <cstdint>

#include "nn/mac.hpp"

namespace axmult::jpeg {

/// One 8x8 block of DCT coefficients or (level-shifted) samples, row-major
/// natural order: index = y * 8 + x.
using Block = std::array<int, 64>;

/// Backend routing of one pipeline stage. `backend == nullptr` is the
/// plain C++ integer-multiply reference; otherwise every multiply goes
/// through the backend's product table (nn::mul_wide limb composition for
/// operands wider than the table). `swap` puts the data operand on the
/// transposed port at every unit — the paper's Cas/Ccs wiring trick, free
/// in hardware.
struct StagePlan {
  nn::MacBackendPtr backend;
  bool swap = false;
};

/// Per-stage backend selection for the whole codec. Encode uses
/// {fdct, quant}; decode uses {dequant, idct}.
struct CodecPlan {
  StagePlan fdct;
  StagePlan quant;
  StagePlan dequant;
  StagePlan idct;

  /// Same backend/swap on all four stages (null = plain int reference).
  [[nodiscard]] static CodecPlan uniform(nn::MacBackendPtr backend, bool swap = false) {
    StagePlan s{std::move(backend), swap};
    return CodecPlan{s, s, s, s};
  }
};

/// The stage's multiply: magnitudes only (signs are handled at the
/// accumulate/reapply site, matching a sign-magnitude datapath).
[[nodiscard]] inline std::uint64_t stage_mul(const StagePlan& stage, std::uint32_t a,
                                             std::uint32_t b,
                                             std::uint64_t* lookups = nullptr) noexcept {
  if (stage.backend == nullptr) {
    return static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  }
  return nn::mul_wide(*stage.backend, a, b, stage.swap, lookups);
}

/// Sign-magnitude rounding division by 2^shift (round half away from
/// zero) — the post-MAC rescale of the fixed-point DCT.
[[nodiscard]] inline int round_shift(long long value, unsigned shift) noexcept {
  const long long half = 1LL << (shift - 1);
  return value >= 0 ? static_cast<int>((value + half) >> shift)
                    : -static_cast<int>((-value + half) >> shift);
}

}  // namespace axmult::jpeg
