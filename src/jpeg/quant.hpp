// JPEG quantization: the Annex-K luminance/chrominance base tables with
// IJG-style quality scaling, and a multiplier-routed quantize/dequantize.
//
// Hardware JPEG encoders do not divide: the quantizer multiplies by a
// fixed-point reciprocal, q = (|coef| * round(2^15 / step) + 2^14) >> 15,
// sign reapplied — so both directions are multiplies and both route
// through the selectable nn::MacBackend. The reciprocal fits 16 bits
// (steps are clamped to [1, 255]), the coefficient fits 12, so the limb
// composition uses at most two lookups per operand pair.
#pragma once

#include <array>

#include "jpeg/core.hpp"

namespace axmult::jpeg {

/// Fixed-point reciprocal shift of the division-free quantizer.
inline constexpr unsigned kRecipShift = 15;

/// Quantized-coefficient clamp: |level| <= 1023 keeps every AC size within
/// the baseline Huffman alphabet (<= 10) and every DC difference within
/// category 11, even when an approximate multiplier overshoots.
inline constexpr int kMaxLevel = 1023;

enum class Component { kLuma, kChroma };

/// The Annex-K base table of a component (natural order).
[[nodiscard]] const std::array<int, 64>& base_quant_table(Component comp);

/// IJG quality scaling: quality in [1, 100], steps clamped to [1, 255].
[[nodiscard]] std::array<int, 64> scaled_quant_table(Component comp, int quality);

class Quantizer {
 public:
  /// Encoder-side construction from a component and quality factor.
  Quantizer(Component comp, int quality);
  /// Decoder-side construction from the steps parsed out of a DQT segment
  /// (every step must be in [1, 255]; throws std::invalid_argument).
  explicit Quantizer(const std::array<int, 64>& steps);

  [[nodiscard]] const std::array<int, 64>& steps() const noexcept { return steps_; }

  /// round(coef / step) via the reciprocal multiply, clamped to
  /// [-kMaxLevel, kMaxLevel]. `index` is the natural-order position.
  [[nodiscard]] int quantize(int coef, std::size_t index, const StagePlan& stage,
                             std::uint64_t* lookups = nullptr) const;

  /// level * step, the exact inverse scaling.
  [[nodiscard]] int dequantize(int level, std::size_t index, const StagePlan& stage,
                               std::uint64_t* lookups = nullptr) const;

 private:
  void build_reciprocals();

  std::array<int, 64> steps_{};
  std::array<int, 64> recip_{};
};

}  // namespace axmult::jpeg
