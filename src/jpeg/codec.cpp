#include "jpeg/codec.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "common/parallel_for.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/entropy.hpp"

namespace axmult::jpeg {

namespace {

// JPEG marker bytes.
constexpr std::uint8_t kMarker = 0xFF;
constexpr std::uint8_t kSOI = 0xD8;
constexpr std::uint8_t kEOI = 0xD9;
constexpr std::uint8_t kAPP0 = 0xE0;
constexpr std::uint8_t kDQT = 0xDB;
constexpr std::uint8_t kSOF0 = 0xC0;
constexpr std::uint8_t kDHT = 0xC4;
constexpr std::uint8_t kSOS = 0xDA;

void put16(std::vector<std::uint8_t>& out, unsigned v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_segment(std::vector<std::uint8_t>& out, std::uint8_t marker,
                 const std::vector<std::uint8_t>& payload) {
  out.push_back(kMarker);
  out.push_back(marker);
  put16(out, static_cast<unsigned>(payload.size() + 2));
  out.insert(out.end(), payload.begin(), payload.end());
}

void put_dht(std::vector<std::uint8_t>& payload, unsigned tc, unsigned th,
             const HuffTable& table) {
  payload.push_back(static_cast<std::uint8_t>((tc << 4) | th));
  payload.insert(payload.end(), table.bits().begin(), table.bits().end());
  payload.insert(payload.end(), table.vals().begin(), table.vals().end());
}

/// Per-stage lookup counters a worker accumulates locally and folds into
/// the shared totals once — integer sums, order-independent.
struct StageCounters {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

}  // namespace

Block extract_block(const apps::Image& image, unsigned bx, unsigned by) {
  Block block{};
  for (unsigned y = 0; y < 8; ++y) {
    for (unsigned x = 0; x < 8; ++x) {
      block[y * 8 + x] =
          static_cast<int>(image.clamped(static_cast<int>(bx * 8 + x),
                                         static_cast<int>(by * 8 + y))) -
          128;
    }
  }
  return block;
}

std::vector<Block> encode_blocks(const apps::Image& image, const Quantizer& quant,
                                 const CodecPlan& plan, unsigned threads,
                                 EncodeStats* stats) {
  if (image.width() == 0 || image.height() == 0) {
    throw std::invalid_argument("jpeg::encode_blocks: empty image");
  }
  const unsigned bw = blocks_across(image.width());
  const unsigned bh = blocks_across(image.height());
  std::vector<Block> blocks(static_cast<std::size_t>(bw) * bh);
  std::atomic<std::uint64_t> fdct_lookups{0};
  std::atomic<std::uint64_t> quant_lookups{0};
  parallel_chunks(bh, threads, [&] {
    return [&](std::uint64_t by) {
      StageCounters local;
      for (unsigned bx = 0; bx < bw; ++bx) {
        const Block shifted = extract_block(image, bx, static_cast<unsigned>(by));
        const Block freq = fdct(shifted, plan.fdct, &local.a);
        Block& q = blocks[by * bw + bx];
        for (std::size_t i = 0; i < 64; ++i) {
          q[i] = quant.quantize(freq[i], i, plan.quant, &local.b);
        }
      }
      fdct_lookups.fetch_add(local.a, std::memory_order_relaxed);
      quant_lookups.fetch_add(local.b, std::memory_order_relaxed);
    };
  });
  if (stats != nullptr) {
    stats->blocks += blocks.size();
    stats->fdct_lookups += fdct_lookups.load();
    stats->quant_lookups += quant_lookups.load();
  }
  return blocks;
}

std::vector<std::uint8_t> entropy_encode(const std::vector<Block>& blocks, unsigned width,
                                         unsigned height, const std::array<int, 64>& steps) {
  std::vector<std::uint8_t> out;
  out.push_back(kMarker);
  out.push_back(kSOI);
  // APP0: minimal JFIF 1.01 header, no thumbnail.
  put_segment(out, kAPP0,
              {'J', 'F', 'I', 'F', 0, 1, 1, 0 /* no density units */, 0, 1, 0, 1, 0, 0});
  // DQT: table 0, 8-bit precision, zigzag order.
  {
    std::vector<std::uint8_t> payload;
    payload.push_back(0x00);
    const auto& zz = zigzag_order();
    for (std::size_t i = 0; i < 64; ++i) {
      payload.push_back(static_cast<std::uint8_t>(steps[zz[i]]));
    }
    put_segment(out, kDQT, payload);
  }
  // SOF0: baseline, 8-bit samples, one component, no subsampling.
  {
    std::vector<std::uint8_t> payload;
    payload.push_back(8);
    put16(payload, height);
    put16(payload, width);
    payload.push_back(1);     // Nf
    payload.push_back(1);     // component id
    payload.push_back(0x11);  // H=1, V=1
    payload.push_back(0);     // quant table 0
    put_segment(out, kSOF0, payload);
  }
  // DHT: the Annex-K luma DC/AC tables.
  {
    std::vector<std::uint8_t> payload;
    put_dht(payload, 0, 0, HuffTable::dc_luma());
    put_dht(payload, 1, 0, HuffTable::ac_luma());
    put_segment(out, kDHT, payload);
  }
  // SOS.
  {
    std::vector<std::uint8_t> payload;
    payload.push_back(1);     // Ns
    payload.push_back(1);     // component id
    payload.push_back(0x00);  // DC table 0, AC table 0
    payload.push_back(0);     // Ss
    payload.push_back(63);    // Se
    payload.push_back(0);     // Ah/Al
    put_segment(out, kSOS, payload);
  }
  // Entropy-coded segment (DC prediction runs across the whole scan).
  BitWriter writer;
  int dc_pred = 0;
  for (const Block& block : blocks) {
    encode_block(writer, block, dc_pred, HuffTable::dc_luma(), HuffTable::ac_luma());
  }
  const std::vector<std::uint8_t> entropy = writer.finish();
  out.insert(out.end(), entropy.begin(), entropy.end());
  out.push_back(kMarker);
  out.push_back(kEOI);
  return out;
}

std::vector<std::uint8_t> encode(const apps::Image& image, int quality, const CodecPlan& plan,
                                 unsigned threads, EncodeStats* stats) {
  const Quantizer quant(Component::kLuma, quality);
  const std::vector<Block> blocks = encode_blocks(image, quant, plan, threads, stats);
  return entropy_encode(blocks, image.width(), image.height(), quant.steps());
}

namespace {

/// Minimal marker-level parser for the streams entropy_encode() emits
/// (single-scan baseline, one component). Fails with one-line errors.
struct ParsedStream {
  unsigned width = 0;
  unsigned height = 0;
  std::array<int, 64> steps{};
  const std::uint8_t* entropy = nullptr;
  std::size_t entropy_size = 0;
};

ParsedStream parse_stream(const std::vector<std::uint8_t>& bytes) {
  ParsedStream ps;
  bool have_dqt = false;
  bool have_sof = false;
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (pos + n > bytes.size()) throw std::runtime_error("jpeg::decode: truncated stream");
  };
  need(2);
  if (bytes[0] != kMarker || bytes[1] != kSOI) {
    throw std::runtime_error("jpeg::decode: missing SOI");
  }
  pos = 2;
  for (;;) {
    need(2);
    if (bytes[pos] != kMarker) throw std::runtime_error("jpeg::decode: expected marker");
    const std::uint8_t marker = bytes[pos + 1];
    pos += 2;
    if (marker == kEOI) throw std::runtime_error("jpeg::decode: EOI before SOS");
    need(2);
    const std::size_t len =
        (static_cast<std::size_t>(bytes[pos]) << 8) | bytes[pos + 1];
    if (len < 2) throw std::runtime_error("jpeg::decode: bad segment length");
    need(len);
    const std::uint8_t* seg = bytes.data() + pos + 2;
    const std::size_t seg_len = len - 2;
    switch (marker) {
      case kDQT: {
        if (seg_len < 65 || (seg[0] >> 4) != 0) {
          throw std::runtime_error("jpeg::decode: unsupported DQT");
        }
        const auto& zz = zigzag_order();
        for (std::size_t i = 0; i < 64; ++i) ps.steps[zz[i]] = seg[1 + i];
        have_dqt = true;
        break;
      }
      case kSOF0: {
        if (seg_len < 8 || seg[0] != 8) {
          throw std::runtime_error("jpeg::decode: unsupported SOF0");
        }
        ps.height = (static_cast<unsigned>(seg[1]) << 8) | seg[2];
        ps.width = (static_cast<unsigned>(seg[3]) << 8) | seg[4];
        if (seg[5] != 1 || seg[7] != 0x11) {
          throw std::runtime_error("jpeg::decode: only single-component 1x1 scans supported");
        }
        have_sof = true;
        break;
      }
      case kSOS: {
        if (!have_dqt || !have_sof) {
          throw std::runtime_error("jpeg::decode: SOS before DQT/SOF0");
        }
        if (seg_len < 6 || seg[0] != 1) {
          throw std::runtime_error("jpeg::decode: unsupported SOS");
        }
        // Entropy data runs to the EOI marker (0xFF00 is stuffed data,
        // which the BitReader undoes).
        std::size_t end = pos + len;
        while (end + 1 < bytes.size() &&
               !(bytes[end] == kMarker && bytes[end + 1] != 0x00)) {
          ++end;
        }
        ps.entropy = bytes.data() + pos + len;
        ps.entropy_size = end - (pos + len);
        return ps;
      }
      default:
        break;  // APP0/DHT and friends: tables are fixed, skip the payload
    }
    pos += len;
  }
}

}  // namespace

Decoded decode(const std::vector<std::uint8_t>& bytes, const CodecPlan& plan,
               unsigned threads) {
  const ParsedStream ps = parse_stream(bytes);
  if (ps.width == 0 || ps.height == 0) {
    throw std::runtime_error("jpeg::decode: zero-sized frame");
  }
  Decoded result;
  result.width = ps.width;
  result.height = ps.height;
  result.steps = ps.steps;
  const Quantizer quant(ps.steps);

  // Entropy decode (inherently serial: the DC prediction chain).
  const unsigned bw = blocks_across(ps.width);
  const unsigned bh = blocks_across(ps.height);
  result.blocks.resize(static_cast<std::size_t>(bw) * bh);
  BitReader reader(ps.entropy, ps.entropy_size);
  int dc_pred = 0;
  for (Block& block : result.blocks) {
    block = decode_block(reader, dc_pred, HuffTable::dc_luma(), HuffTable::ac_luma());
  }
  if (reader.overrun()) {
    throw std::runtime_error("jpeg::decode: entropy stream shorter than the frame");
  }

  // Dequantize + IDCT, parallel over block rows.
  result.image = apps::Image(ps.width, ps.height);
  std::atomic<std::uint64_t> dequant_lookups{0};
  std::atomic<std::uint64_t> idct_lookups{0};
  parallel_chunks(bh, threads, [&] {
    return [&](std::uint64_t by) {
      StageCounters local;
      for (unsigned bx = 0; bx < bw; ++bx) {
        const Block& q = result.blocks[by * bw + bx];
        Block freq{};
        for (std::size_t i = 0; i < 64; ++i) {
          freq[i] = quant.dequantize(q[i], i, plan.dequant, &local.a);
        }
        const Block spatial = idct(freq, plan.idct, &local.b);
        for (unsigned y = 0; y < 8; ++y) {
          const unsigned py = static_cast<unsigned>(by) * 8 + y;
          if (py >= ps.height) break;
          for (unsigned x = 0; x < 8; ++x) {
            const unsigned px = bx * 8 + x;
            if (px >= ps.width) break;
            result.image.at(px, py) =
                static_cast<std::uint8_t>(std::clamp(spatial[y * 8 + x] + 128, 0, 255));
          }
        }
      }
      dequant_lookups.fetch_add(local.a, std::memory_order_relaxed);
      idct_lookups.fetch_add(local.b, std::memory_order_relaxed);
    };
  });
  result.stats.blocks = result.blocks.size();
  result.stats.dequant_lookups = dequant_lookups.load();
  result.stats.idct_lookups = idct_lookups.load();
  return result;
}

}  // namespace axmult::jpeg
