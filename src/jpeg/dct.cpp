#include "jpeg/dct.hpp"

#include <cmath>
#include <cstdlib>

namespace axmult::jpeg {

namespace {

std::array<std::array<int, 8>, 8> make_coefficients() {
  std::array<std::array<int, 8>, 8> c{};
  for (int u = 0; u < 8; ++u) {
    const double norm = u == 0 ? std::sqrt(0.125) : 0.5;
    for (int x = 0; x < 8; ++x) {
      c[u][x] = static_cast<int>(
          std::lround(kDctScale * norm * std::cos((2 * x + 1) * u * M_PI / 16.0)));
    }
  }
  return c;
}

/// One routed MAC row: sum of eight value x coefficient products, signs
/// applied at the accumulate (sign-magnitude datapath), rescaled by the
/// coefficient scale with round-half-away-from-zero.
int mac_row(const int* values, std::size_t vstride, const int* coeffs, std::size_t cstride,
            const StagePlan& stage, std::uint64_t* lookups) {
  long long acc = 0;
  for (int i = 0; i < 8; ++i) {
    const int v = values[static_cast<std::size_t>(i) * vstride];
    const int c = coeffs[static_cast<std::size_t>(i) * cstride];
    if (v == 0 || c == 0) continue;
    const auto p = static_cast<long long>(
        stage_mul(stage, static_cast<std::uint32_t>(std::abs(v)),
                  static_cast<std::uint32_t>(std::abs(c)), lookups));
    acc += ((v < 0) != (c < 0)) ? -p : p;
  }
  return round_shift(acc, kDctShift);
}

}  // namespace

const std::array<std::array<int, 8>, 8>& dct_coefficients() {
  static const std::array<std::array<int, 8>, 8> coeff = make_coefficients();
  return coeff;
}

Block fdct(const Block& shifted, const StagePlan& stage, std::uint64_t* lookups) {
  const auto& c = dct_coefficients();
  // Rows: tmp[y][u] = sum_x shifted[y][x] * c[u][x].
  Block tmp{};
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      tmp[y * 8 + u] = mac_row(&shifted[static_cast<std::size_t>(y) * 8], 1, c[u].data(), 1,
                               stage, lookups);
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * c[v][y].
  Block out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      out[v * 8 + u] = mac_row(&tmp[static_cast<std::size_t>(u)], 8, c[v].data(), 1, stage,
                               lookups);
    }
  }
  return out;
}

Block idct(const Block& freq, const StagePlan& stage, std::uint64_t* lookups) {
  const auto& c = dct_coefficients();
  // Columns first: tmp[y][u] = sum_v freq[v][u] * c[v][y]  (C^T).
  Block tmp{};
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      tmp[y * 8 + u] = mac_row(&freq[static_cast<std::size_t>(u)], 8, &c[0][y], 8, stage,
                               lookups);
    }
  }
  // Rows: out[y][x] = sum_u tmp[y][u] * c[u][x].
  Block out{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out[y * 8 + x] = mac_row(&tmp[static_cast<std::size_t>(y) * 8], 1, &c[0][x], 8, stage,
                               lookups);
    }
  }
  return out;
}

}  // namespace axmult::jpeg
