#include "jpeg/quant.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace axmult::jpeg {

namespace {

/// ITU-T T.81 Annex K.1 luminance table.
constexpr std::array<int, 64> kLumaBase = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

/// ITU-T T.81 Annex K.2 chrominance table.
constexpr std::array<int, 64> kChromaBase = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

}  // namespace

const std::array<int, 64>& base_quant_table(Component comp) {
  return comp == Component::kLuma ? kLumaBase : kChromaBase;
}

std::array<int, 64> scaled_quant_table(Component comp, int quality) {
  const int q = std::clamp(quality, 1, 100);
  const int scale = q < 50 ? 5000 / q : 200 - 2 * q;
  const auto& base = base_quant_table(comp);
  std::array<int, 64> steps{};
  for (std::size_t i = 0; i < 64; ++i) {
    steps[i] = std::clamp((base[i] * scale + 50) / 100, 1, 255);
  }
  return steps;
}

Quantizer::Quantizer(Component comp, int quality) : steps_(scaled_quant_table(comp, quality)) {
  build_reciprocals();
}

Quantizer::Quantizer(const std::array<int, 64>& steps) : steps_(steps) {
  for (const int s : steps_) {
    if (s < 1 || s > 255) throw std::invalid_argument("Quantizer: step outside [1, 255]");
  }
  build_reciprocals();
}

void Quantizer::build_reciprocals() {
  for (std::size_t i = 0; i < 64; ++i) {
    recip_[i] = ((1 << kRecipShift) + steps_[i] / 2) / steps_[i];
  }
}

int Quantizer::quantize(int coef, std::size_t index, const StagePlan& stage,
                        std::uint64_t* lookups) const {
  const auto mag = static_cast<std::uint32_t>(std::abs(coef));
  const std::uint64_t scaled =
      stage_mul(stage, mag, static_cast<std::uint32_t>(recip_[index]), lookups);
  const auto level = static_cast<int>(
      std::min<std::uint64_t>((scaled + (1u << (kRecipShift - 1))) >> kRecipShift,
                              static_cast<std::uint64_t>(kMaxLevel)));
  return coef < 0 ? -level : level;
}

int Quantizer::dequantize(int level, std::size_t index, const StagePlan& stage,
                          std::uint64_t* lookups) const {
  const auto mag = static_cast<std::uint32_t>(std::abs(level));
  const auto coef = static_cast<int>(
      stage_mul(stage, mag, static_cast<std::uint32_t>(steps_[index]), lookups));
  return level < 0 ? -coef : coef;
}

}  // namespace axmult::jpeg
