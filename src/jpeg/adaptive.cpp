#include "jpeg/adaptive.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/rng.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/quant.hpp"

namespace axmult::jpeg {
namespace {

// Multiply counts of one 8x8 block per stage (two 1-D passes of 64
// outputs x 8 products each for the transforms, one multiply per
// coefficient for the scalers) — the monitor's exact-shadow work is billed
// analytically at these rates because the plain-int reference path has no
// table lookups to count.
constexpr std::uint64_t kDctMuls = 2 * 64 * 8;
constexpr std::uint64_t kScaleMuls = 64;

struct StripeOutput {
  std::vector<Block> blocks;
  std::uint64_t fdct_lookups = 0;
  std::uint64_t quant_lookups = 0;
};

/// fdct + quantize of blocks [first, last) at one rung.
StripeOutput transform_stripe(const apps::Image& image, const Quantizer& quant,
                              const StagePlan& stage, unsigned across, std::size_t first,
                              std::size_t last) {
  StripeOutput out;
  out.blocks.reserve(last - first);
  for (std::size_t b = first; b < last; ++b) {
    const unsigned bx = static_cast<unsigned>(b % across);
    const unsigned by = static_cast<unsigned>(b / across);
    const Block shifted = extract_block(image, bx, by);
    const Block freq = fdct(shifted, stage, &out.fdct_lookups);
    Block quantized;
    for (std::size_t i = 0; i < 64; ++i) {
      quantized[i] = quant.quantize(freq[i], i, stage, &out.quant_lookups);
    }
    out.blocks.push_back(quantized);
  }
  return out;
}

/// Decoder-side reconstruction of one quantized block on the plain-int
/// reference path: dequantize + idct + level unshift, clamped to [0, 255].
std::array<int, 64> reconstruct(const Block& quantized, const Quantizer& quant) {
  const StagePlan plain{};
  Block freq;
  for (std::size_t i = 0; i < 64; ++i) {
    freq[i] = quant.dequantize(quantized[i], i, plain);
  }
  const Block spatial = idct(freq, plain);
  std::array<int, 64> pixels{};
  for (std::size_t i = 0; i < 64; ++i) {
    pixels[i] = std::clamp(spatial[i] + 128, 0, 255);
  }
  return pixels;
}

/// Deterministic probe subset of [first, last): `count` distinct block
/// indices drawn from the stripe's own PRNG stream.
std::vector<std::size_t> pick_probes(std::size_t first, std::size_t last, std::size_t count,
                                     Xoshiro256& rng) {
  const std::size_t size = last - first;
  std::vector<std::size_t> probes;
  if (count >= size) {
    probes.reserve(size);
    for (std::size_t b = first; b < last; ++b) probes.push_back(b);
    return probes;
  }
  probes.reserve(count);
  while (probes.size() < count) {
    const std::size_t b = first + static_cast<std::size_t>(rng.below(size));
    if (std::find(probes.begin(), probes.end(), b) == probes.end()) probes.push_back(b);
  }
  std::sort(probes.begin(), probes.end());
  return probes;
}

}  // namespace

AdaptiveResult encode_adaptive(const apps::Image& image, int quality,
                               const adapt::Ladder& ladder, const AdaptiveOptions& options) {
  adapt::PolicyConfig policy = options.policy;
  policy.slo = slo_from_psnr(options.slo_psnr_db);

  const Quantizer quant(Component::kLuma, quality);
  const unsigned across = blocks_across(image.width());
  const unsigned down = blocks_across(image.height());
  const std::size_t total = std::size_t{across} * down;
  const std::size_t rows_per_stripe = std::max<std::size_t>(options.stripe_block_rows, 1);
  const std::size_t stripe_blocks = rows_per_stripe * across;

  adapt::RungGovernor governor(ladder, policy, "jpeg-encode");

  AdaptiveResult result;
  result.blocks.resize(total);

  std::size_t stripe = 0;
  for (std::size_t first = 0; first < total; first += stripe_blocks, ++stripe) {
    const std::size_t last = std::min(first + stripe_blocks, total);
    Xoshiro256 rng(derive_stream_seed(options.seed, stripe));
    const std::vector<std::size_t> probes =
        pick_probes(first, last, options.probe_blocks, rng);

    for (;;) {
      const std::size_t rung = governor.decide(stripe);
      const StagePlan stage{ladder.rungs[rung].backend, false};
      StripeOutput out = transform_stripe(image, quant, stage, across, first, last);
      result.stats.blocks += last - first;
      result.stats.fdct_lookups += out.fdct_lookups;
      result.stats.quant_lookups += out.quant_lookups;
      governor.charge_macs(rung, out.fdct_lookups + out.quant_lookups);

      // Exact-shadow drift estimate over the probe blocks: normalized MSE
      // between what a receiver decodes from this stripe's coefficients
      // and what it would decode from an exactly-encoded stripe.
      double estimate = 0.0;
      if (!probes.empty()) {
        const StagePlan plain{};
        std::uint64_t sse = 0;
        for (const std::size_t b : probes) {
          const unsigned bx = static_cast<unsigned>(b % across);
          const unsigned by = static_cast<unsigned>(b / across);
          const Block shifted = extract_block(image, bx, by);
          const Block freq = fdct(shifted, plain);
          Block shadow;
          for (std::size_t i = 0; i < 64; ++i) {
            shadow[i] = quant.quantize(freq[i], i, plain);
          }
          const std::array<int, 64> got = reconstruct(out.blocks[b - first], quant);
          const std::array<int, 64> want = reconstruct(shadow, quant);
          for (std::size_t i = 0; i < 64; ++i) {
            const long long d = got[i] - want[i];
            sse += static_cast<std::uint64_t>(d * d);
          }
        }
        const double denom = static_cast<double>(probes.size()) * 64.0 * 255.0 * 255.0;
        estimate = static_cast<double>(sse) / denom;
        governor.charge_monitor_macs(static_cast<std::uint64_t>(probes.size()) *
                                     (kDctMuls + kScaleMuls   // shadow fdct + quantize
                                      + 2 * (kScaleMuls + kDctMuls)));  // two reconstructions
      }

      const bool recompute = governor.observe(stripe, estimate);
      if (!recompute) {
        std::copy(out.blocks.begin(), out.blocks.end(), result.blocks.begin() + first);
        break;
      }
      // Hard SLO violation: the stripe is recomputed at the escalated rung;
      // the rejected attempt stays on the bill. The exact top rung is
      // bit-identical to the shadow (estimate 0), so this terminates.
    }
  }

  result.bytes = entropy_encode(result.blocks, image.width(), image.height(), quant.steps());
  result.report = governor.report(1);
  return result;
}

}  // namespace axmult::jpeg
