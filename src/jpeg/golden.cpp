#include "jpeg/golden.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "dse/jsonio.hpp"
#include "jpeg/codec.hpp"
#include "nn/mac.hpp"

namespace axmult::jpeg {
namespace {

// Integer-only scene synthesis: the corpus must reproduce bit-identically
// on every platform, so no libm call (sin/cos/sqrt) may shape a pixel.
// Noise comes from the repo's own Xoshiro256.

std::uint8_t clamp_pixel(long v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Diagonal gradient, two filled rectangles, a checkerboard band and mild
/// uniform noise — smooth regions and block-aligned edges.
apps::Image make_blocks_scene(unsigned width, unsigned height, std::uint64_t seed) {
  apps::Image img(width, height);
  Xoshiro256 rng(seed);
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      long v = 40 + static_cast<long>((120UL * x) / width) +
               static_cast<long>((50UL * y) / height);
      if (x >= width / 8 && x < width / 3 && y >= height / 6 && y < height / 2) v = 220;
      if (x >= width / 2 && x < 3 * width / 4 && y >= height / 2 && y < 5 * height / 6) v = 25;
      if (y >= 7 * height / 8) v = (((x / 4) + (y / 4)) % 2 == 0) ? 235 : 20;
      v += static_cast<long>(rng.below(9)) - 4;
      img.at(x, y) = clamp_pixel(v);
    }
  }
  return img;
}

/// Concentric rings from the integer radius-squared — curved edges at
/// every orientation, the worst case for block-transform ringing.
apps::Image make_rings_scene(unsigned width, unsigned height, std::uint64_t seed) {
  apps::Image img(width, height);
  Xoshiro256 rng(seed);
  const long cx = width / 2;
  const long cy = height / 2;
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      const long dx = static_cast<long>(x) - cx;
      const long dy = static_cast<long>(y) - cy;
      const long r2 = dx * dx + dy * dy;
      long v = ((r2 / 64) % 2 == 0) ? 190 : 60;
      v += (r2 / 16) % 32;  // slow radial shading inside each ring
      v += static_cast<long>(rng.below(7)) - 3;
      img.at(x, y) = clamp_pixel(v);
    }
  }
  return img;
}

/// Thin vertical strokes over a flat background plus salt-and-pepper
/// impulses — text-like high-frequency content.
apps::Image make_strokes_scene(unsigned width, unsigned height, std::uint64_t seed) {
  apps::Image img(width, height);
  Xoshiro256 rng(seed);
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      long v = 200;
      if ((x % 7) < 2 && (y % 11) != 0) v = 30;       // vertical strokes
      if (((x + y) % 13) == 0) v = 110;               // diagonal hatching
      const std::uint64_t roll = rng.below(100);
      if (roll == 0) v = 255;
      if (roll == 1) v = 0;
      img.at(x, y) = clamp_pixel(v);
    }
  }
  return img;
}

std::string format_entry(const GoldenEntry& e) {
  char ssim_buf[64];
  std::snprintf(ssim_buf, sizeof(ssim_buf), "%.17g", e.ssim);
  std::ostringstream line;
  line << "{\"image\": \"" << e.image << "\", \"quality\": " << e.quality
       << ", \"backend\": \"" << e.backend << "\", \"sse\": " << e.sse
       << ", \"bytes\": " << e.bytes << ", \"ssim\": " << ssim_buf << "}";
  return line.str();
}

GoldenEntry roundtrip(const NamedImage& named, int quality, const std::string& backend,
                      unsigned threads) {
  GoldenEntry entry;
  entry.image = named.name;
  entry.quality = quality;
  entry.backend = backend;
  const CodecPlan plan = CodecPlan::uniform(nn::shared_mac_backend(backend));
  const std::vector<std::uint8_t> bytes = encode(named.image, quality, plan, threads);
  const Decoded decoded = decode(bytes, plan, threads);
  entry.bytes = bytes.size();
  const auto& a = named.image.pixels();
  const auto& b = decoded.image.pixels();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const long d = static_cast<long>(a[i]) - static_cast<long>(b[i]);
    entry.sse += static_cast<std::uint64_t>(d * d);
  }
  entry.ssim = apps::ssim(named.image, decoded.image);
  return entry;
}

}  // namespace

const std::vector<NamedImage>& golden_corpus() {
  static const std::vector<NamedImage> corpus = [] {
    std::vector<NamedImage> c;
    c.push_back({"blocks-96x64", make_blocks_scene(96, 64, 101)});
    c.push_back({"rings-80x80", make_rings_scene(80, 80, 202)});
    c.push_back({"strokes-72x48", make_strokes_scene(72, 48, 303)});
    return c;
  }();
  return corpus;
}

const std::vector<int>& golden_qualities() {
  static const std::vector<int> qualities = {25, 50, 90};
  return qualities;
}

const std::vector<std::string>& golden_backends() {
  static const std::vector<std::string> backends = {"exact", "ca8", "cc8", "trunc8_4"};
  return backends;
}

std::vector<GoldenEntry> compute_golden_entries(unsigned threads) {
  std::vector<GoldenEntry> entries;
  for (const NamedImage& named : golden_corpus()) {
    for (const int quality : golden_qualities()) {
      for (const std::string& backend : golden_backends()) {
        entries.push_back(roundtrip(named, quality, backend, threads));
      }
    }
  }
  return entries;
}

void write_golden_corpus(const std::vector<GoldenEntry>& entries, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "{\"subject\": \"jpeg-corpus\", \"version\": 1, \"entries\": " << entries.size()
      << "}\n";
  for (const GoldenEntry& e : entries) out << format_entry(e) << "\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<GoldenEntry> read_golden_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string header;
  if (!std::getline(in, header)) throw std::runtime_error(path + ": empty golden file");
  const auto subject = dse::jsonio::find_string(header, "subject");
  const auto count = dse::jsonio::find_number(header, "entries");
  if (!subject || *subject != "jpeg-corpus" || !count) {
    throw std::runtime_error(path + ": not a jpeg-corpus golden file");
  }
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    GoldenEntry e;
    const auto image = dse::jsonio::find_string(line, "image");
    const auto quality = dse::jsonio::find_number(line, "quality");
    const auto backend = dse::jsonio::find_string(line, "backend");
    const auto sse = dse::jsonio::find_number(line, "sse");
    const auto bytes = dse::jsonio::find_number(line, "bytes");
    const auto ssim_v = dse::jsonio::find_number(line, "ssim");
    if (!image || !quality || !backend || !sse || !bytes || !ssim_v) {
      throw std::runtime_error(path + ": malformed golden row: " + line);
    }
    e.image = *image;
    e.quality = static_cast<int>(*quality);
    e.backend = *backend;
    e.sse = static_cast<std::uint64_t>(*sse);
    e.bytes = static_cast<std::uint64_t>(*bytes);
    e.ssim = *ssim_v;
    entries.push_back(std::move(e));
  }
  if (entries.size() != static_cast<std::size_t>(*count)) {
    throw std::runtime_error(path + ": row count does not match header");
  }
  return entries;
}

std::optional<std::string> replay_golden_corpus(const std::string& path, unsigned threads) {
  const std::vector<GoldenEntry> frozen = read_golden_corpus(path);
  for (const GoldenEntry& want : frozen) {
    const NamedImage* named = nullptr;
    for (const NamedImage& c : golden_corpus()) {
      if (c.name == want.image) named = &c;
    }
    if (named == nullptr) {
      return "golden image '" + want.image + "' is not in the corpus";
    }
    const GoldenEntry got = roundtrip(*named, want.quality, want.backend, threads);
    const std::string triple =
        want.image + " q" + std::to_string(want.quality) + " " + want.backend;
    if (got.sse != want.sse) {
      return triple + ": sse drifted (frozen " + std::to_string(want.sse) + ", got " +
             std::to_string(got.sse) + ")";
    }
    if (got.bytes != want.bytes) {
      return triple + ": stream size drifted (frozen " + std::to_string(want.bytes) +
             ", got " + std::to_string(got.bytes) + ")";
    }
    if (std::fabs(got.ssim - want.ssim) > 1e-12) {
      return triple + ": ssim drifted (frozen " + std::to_string(want.ssim) + ", got " +
             std::to_string(got.ssim) + ")";
    }
  }
  return std::nullopt;
}

}  // namespace axmult::jpeg
