// The design catalog: every multiplier that appears in the paper's
// evaluation, each with a coupled behavioral model and netlist factory.
//
// This is the "open-source library" surface of the reproduction: a bench
// or an application asks the catalog for designs and gets both the thing
// to simulate and the thing to synthesize.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fabric/netlist.hpp"
#include "mult/multiplier.hpp"

namespace axmult::analysis {

struct DesignPoint {
  std::string name;
  std::string category;  ///< "proposed" | "state-of-the-art" | "ip" | "family"
  mult::MultiplierPtr model;
  std::function<fabric::Netlist()> netlist;  ///< may be empty (behavioral-only)

  [[nodiscard]] bool has_netlist() const { return static_cast<bool>(netlist); }
};

/// The paper's core comparison set at a given width: Ca, Cc, K [6],
/// W [19], the Vivado-IP-style accurate multipliers (speed- and
/// area-optimized) and the precision-reduced truncation baseline
/// (3 zeroed LSBs at 4 bits, 4 at 8/16 bits — the paper's Fig. 7 set).
[[nodiscard]] std::vector<DesignPoint> paper_designs(unsigned width);

/// The EvoApprox8b-style approximate design-space cloud at 8x8 used for
/// the Pareto studies (Figs. 9/10): systematic truncations, perforations,
/// broken-summation variants and elementary-block mixes. Stand-in for the
/// published 471-circuit evolved library (see DESIGN.md).
[[nodiscard]] std::vector<DesignPoint> evo_family_8x8();

/// Looks up a design by name in `points`; throws std::out_of_range.
[[nodiscard]] const DesignPoint& find_design(const std::vector<DesignPoint>& points,
                                             const std::string& name);

}  // namespace axmult::analysis
