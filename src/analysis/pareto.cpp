#include "analysis/pareto.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace axmult::analysis {

namespace {

/// Hypervolume of `pts` over objectives [0, dim] against `ref`, by
/// slicing along objective `dim`: sort ascending on that coordinate, and
/// each slab between consecutive coordinates is (slab depth) x (lower-
/// dimensional hypervolume of the points entered so far).
double hv_slice(std::vector<const std::vector<double>*> pts, const std::vector<double>& ref,
                std::size_t dim) {
  if (pts.empty()) return 0.0;
  if (dim == 0) {
    double best = ref[0];
    for (const auto* p : pts) best = std::min(best, (*p)[0]);
    return ref[0] - best;
  }
  std::sort(pts.begin(), pts.end(),
            [dim](const std::vector<double>* a, const std::vector<double>* b) {
              return (*a)[dim] < (*b)[dim];
            });
  double volume = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double upper = (i + 1 < pts.size()) ? (*pts[i + 1])[dim] : ref[dim];
    const double depth = upper - (*pts[i])[dim];
    if (depth <= 0.0) continue;
    std::vector<const std::vector<double>*> active(pts.begin(),
                                                   pts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    volume += depth * hv_slice(std::move(active), ref, dim - 1);
  }
  return volume;
}

}  // namespace

void mark_pareto_front(std::vector<ParetoPoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      const bool leq = q.x <= p.x && q.y <= p.y;
      const bool strict = q.x < p.x || q.y < p.y;
      if (leq && strict) {
        p.pareto = false;
        break;
      }
    }
  }
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  mark_pareto_front(points);
  std::vector<ParetoPoint> front;
  for (const auto& p : points) {
    if (p.pareto) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) { return a.x < b.x; });
  return front;
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

std::vector<unsigned> nondominated_rank(const std::vector<std::vector<double>>& costs) {
  const std::size_t n = costs.size();
  std::vector<unsigned> rank(n, 0);
  if (n == 0) return rank;
  // Deb's bookkeeping: how many points dominate i, and whom i dominates.
  std::vector<unsigned> dominated_by(n, 0);
  std::vector<std::vector<std::size_t>> dominating(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(costs[i], costs[j])) {
        dominating[i].push_back(j);
        ++dominated_by[j];
      } else if (dominates(costs[j], costs[i])) {
        dominating[j].push_back(i);
        ++dominated_by[i];
      }
    }
  }
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (dominated_by[i] == 0) current.push_back(i);
  }
  unsigned level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      rank[i] = level;
      for (const std::size_t j : dominating[i]) {
        if (--dominated_by[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
    ++level;
  }
  return rank;
}

std::vector<double> crowding_distance(const std::vector<std::vector<double>>& costs,
                                      const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  const std::size_t m = costs[front[0]].size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double va = costs[front[a]][obj];
      const double vb = costs[front[b]][obj];
      // Stable tie-break by point index keeps the result deterministic.
      return va != vb ? va < vb : front[a] < front[b];
    });
    const double lo = costs[front[order.front()]][obj];
    const double hi = costs[front[order.back()]][obj];
    dist[order.front()] = kInf;
    dist[order.back()] = kInf;
    if (hi <= lo) continue;  // degenerate objective: no spread information
    for (std::size_t k = 1; k + 1 < n; ++k) {
      if (dist[order[k]] == kInf) continue;
      dist[order[k]] +=
          (costs[front[order[k + 1]]][obj] - costs[front[order[k - 1]]][obj]) / (hi - lo);
    }
  }
  return dist;
}

double hypervolume(const std::vector<std::vector<double>>& costs, const std::vector<double>& ref) {
  if (ref.empty()) return 0.0;
  std::vector<const std::vector<double>*> pts;
  pts.reserve(costs.size());
  for (const auto& c : costs) {
    if (c.size() != ref.size()) {
      throw std::invalid_argument("analysis::hypervolume: cost/reference dimension mismatch");
    }
    bool inside = true;
    for (std::size_t d = 0; d < ref.size() && inside; ++d) inside = c[d] < ref[d];
    if (inside) pts.push_back(&c);
  }
  return hv_slice(std::move(pts), ref, ref.size() - 1);
}

}  // namespace axmult::analysis
