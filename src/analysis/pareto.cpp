#include "analysis/pareto.hpp"

#include <algorithm>

namespace axmult::analysis {

void mark_pareto_front(std::vector<ParetoPoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      const bool leq = q.x <= p.x && q.y <= p.y;
      const bool strict = q.x < p.x || q.y < p.y;
      if (leq && strict) {
        p.pareto = false;
        break;
      }
    }
  }
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  mark_pareto_front(points);
  std::vector<ParetoPoint> front;
  for (const auto& p : points) {
    if (p.pareto) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) { return a.x < b.x; });
  return front;
}

}  // namespace axmult::analysis
