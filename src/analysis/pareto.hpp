// Pareto-front extraction for the design-space studies of Figs. 9/10 and
// the multi-objective machinery (non-dominated sorting + crowding distance)
// behind the src/dse/ search engine.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace axmult::analysis {

struct ParetoPoint {
  std::string name;
  double x = 0.0;  ///< cost axis 1 (minimize), e.g. LUTs or latency
  double y = 0.0;  ///< cost axis 2 (minimize), e.g. average relative error
  bool pareto = false;
};

/// Marks the non-dominated points (minimizing both axes). A point is
/// dominated when another point is <= on both axes and strictly < on at
/// least one.
void mark_pareto_front(std::vector<ParetoPoint>& points);

/// Returns only the non-dominated points, sorted by x.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

// ---- N-objective machinery (all objectives minimized) --------------------

/// True when `a` dominates `b`: a <= b on every objective and a < b on at
/// least one. Equal cost vectors do not dominate each other (ties and
/// duplicate points all stay non-dominated). Vectors must be equal length.
[[nodiscard]] bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Fast non-dominated sort (Deb's NSGA-II): rank[i] is the index of the
/// non-dominated front point i belongs to — 0 for the Pareto front, 1 for
/// the front once rank-0 points are removed, and so on. O(n^2 * m).
[[nodiscard]] std::vector<unsigned> nondominated_rank(
    const std::vector<std::vector<double>>& costs);

/// NSGA-II crowding distance of the points whose indices (into `costs`)
/// are listed in `front`, returned in the same order as `front`. Boundary
/// points of each objective get +infinity; degenerate objectives (all
/// values equal) contribute nothing. Ties sort stably by index, so the
/// result is deterministic for any input order.
[[nodiscard]] std::vector<double> crowding_distance(const std::vector<std::vector<double>>& costs,
                                                    const std::vector<std::size_t>& front);

/// Exact hypervolume (all objectives minimized) of the region dominated
/// by `costs` and bounded by the reference point `ref`: the Lebesgue
/// measure of union over points p of the box [p, ref). Points not
/// strictly better than `ref` on every objective contribute nothing.
/// Recursive objective slicing — exact and deterministic, exponential in
/// the number of objectives but fine for the 2–4-objective fronts the
/// search produces. Every cost vector must have `ref.size()` entries.
[[nodiscard]] double hypervolume(const std::vector<std::vector<double>>& costs,
                                 const std::vector<double>& ref);

}  // namespace axmult::analysis
