// Pareto-front extraction for the design-space studies of Figs. 9/10.
#pragma once

#include <string>
#include <vector>

namespace axmult::analysis {

struct ParetoPoint {
  std::string name;
  double x = 0.0;  ///< cost axis 1 (minimize), e.g. LUTs or latency
  double y = 0.0;  ///< cost axis 2 (minimize), e.g. average relative error
  bool pareto = false;
};

/// Marks the non-dominated points (minimizing both axes). A point is
/// dominated when another point is <= on both axes and strictly < on at
/// least one.
void mark_pareto_front(std::vector<ParetoPoint>& points);

/// Returns only the non-dominated points, sorted by x.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

}  // namespace axmult::analysis
