#include "analysis/catalog.hpp"

#include <stdexcept>

#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::analysis {

using mult::Elementary;
using mult::Summation;

std::vector<DesignPoint> paper_designs(unsigned width) {
  std::vector<DesignPoint> d;
  d.push_back({"Ca_" + std::to_string(width), "proposed", mult::make_ca(width),
               [width] { return multgen::make_ca_netlist(width); }});
  d.push_back({"Cc_" + std::to_string(width), "proposed", mult::make_cc(width),
               [width] { return multgen::make_cc_netlist(width); }});
  d.push_back({"K_" + std::to_string(width), "state-of-the-art", mult::make_kulkarni(width),
               [width] { return multgen::make_kulkarni_netlist(width); }});
  d.push_back({"W_" + std::to_string(width), "state-of-the-art", mult::make_rehman_w(width),
               [width] { return multgen::make_rehman_netlist(width); }});
  d.push_back({"VivadoIP-Speed_" + std::to_string(width), "ip", mult::make_accurate(width),
               [width] { return multgen::make_vivado_speed_netlist(width); }});
  d.push_back({"VivadoIP-Area_" + std::to_string(width), "ip", mult::make_accurate(width),
               [width] { return multgen::make_vivado_area_netlist(width); }});
  const unsigned k = width == 4 ? 3 : 4;  // paper: 3 LSBs at 4x4, 4 at 8x8
  d.push_back({"Mult(" + std::to_string(width) + "," + std::to_string(k) + ")",
               "state-of-the-art", mult::make_result_truncated(width, k),
               [width, k] { return multgen::make_result_truncated_netlist(width, k); }});
  return d;
}

std::vector<DesignPoint> evo_family_8x8() {
  std::vector<DesignPoint> d;
  auto add = [&](std::string name, mult::MultiplierPtr m,
                 std::function<fabric::Netlist()> nl) {
    d.push_back({std::move(name), "family", std::move(m), std::move(nl)});
  };

  // Result truncation depths (high accuracy, almost no area savings —
  // the points the paper's Pareto analysis filters out).
  for (unsigned k = 1; k <= 6; ++k) {
    add("Mult(8," + std::to_string(k) + ")", mult::make_result_truncated(8, k),
        [k] { return multgen::make_result_truncated_netlist(8, k); });
  }
  // Operand truncation depths (shrinking cores).
  for (unsigned k = 1; k <= 4; ++k) {
    add("OpTrunc(8," + std::to_string(k) + ")", mult::make_operand_truncated(8, k),
        [k] { return multgen::make_operand_truncated_netlist(8, k); });
  }
  // Elementary block x summation combinations.
  struct Combo {
    const char* name;
    Elementary e;
    Summation s;
    multgen::MappingStyle style;
    bool ternary;
  };
  const Combo combos[] = {
      {"Acc4x4+CarryFree", Elementary::kAccurate4x4, Summation::kCarryFree,
       multgen::MappingStyle::kHandOptimized, true},
      {"K2x2+CarryFree", Elementary::kKulkarni2x2, Summation::kCarryFree,
       multgen::MappingStyle::kSynthesized, true},
      {"W2x2+CarryFree", Elementary::kRehman2x2, Summation::kCarryFree,
       multgen::MappingStyle::kSynthesized, true},
      {"K2x2+TernarySum", Elementary::kKulkarni2x2, Summation::kAccurate,
       multgen::MappingStyle::kHandOptimized, true},
      {"W2x2+TernarySum", Elementary::kRehman2x2, Summation::kAccurate,
       multgen::MappingStyle::kHandOptimized, true},
      {"Acc2x2Tree", Elementary::kAccurate2x2, Summation::kAccurate,
       multgen::MappingStyle::kSynthesized, false},
  };
  for (const auto& c : combos) {
    multgen::GeneratorSpec spec{8, c.e, c.s, c.style, c.ternary};
    add(c.name, mult::make_recursive(8, c.e, c.s), [spec] { return multgen::make_netlist(spec); });
  }
  // A third accurate IP-style architecture (radix-4 digit products).
  add("Radix4Acc", mult::make_accurate(8), [] { return multgen::make_radix4_netlist(8); });
  // Cb(L): the paper's Section 4.1 "sophisticated approximate addition"
  // extension — hybrid lower-OR summation between Ca and Cc.
  for (unsigned L : {2u, 4u, 6u}) {
    d.push_back({"Cb" + std::to_string(L) + "_8", "proposed-ext", mult::make_cb(8, L),
                 [L] { return multgen::make_cb_netlist(8, L); }});
  }
  // Partial-product perforation built from the paper's approximate 4x4
  // elementary modules — an extension of the proposed methodology.
  for (const auto& [name, hl, lh] :
       {std::tuple<const char*, bool, bool>{"Perf(8,-HL)", true, false},
        {"Perf(8,-LH)", false, true},
        {"Perf(8,-HL-LH)", true, true}}) {
    d.push_back({name, "proposed-ext", mult::make_perforated(8, hl, lh),
                 [hl, lh] { return multgen::make_perforated_netlist(8, hl, lh); }});
  }
  return d;
}

const DesignPoint& find_design(const std::vector<DesignPoint>& points, const std::string& name) {
  for (const auto& p : points) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("design not found: " + name);
}

}  // namespace axmult::analysis
