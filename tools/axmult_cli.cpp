// axmult command-line interface.
//
//   axmult_cli list
//   axmult_cli characterize <design> [samples]
//   axmult_cli implement <design>
//   axmult_cli export-vhdl <design> [file]
//   axmult_cli export-verilog <design> [file]
//
// <design> is a name from `list` (the paper's designs at 4/8/16 bits plus
// the design-space family at 8 bits).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/catalog.hpp"
#include "check/analytic.hpp"
#include "common/parallel_for.hpp"
#include "error/analytic.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "error/metrics.hpp"
#include "fabric/hdl_export.hpp"
#include "fabric/transforms.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace {

using namespace axmult;

std::vector<analysis::DesignPoint> all_designs() {
  std::vector<analysis::DesignPoint> all;
  for (unsigned w : {4u, 8u, 16u}) {
    for (auto& d : analysis::paper_designs(w)) all.push_back(std::move(d));
  }
  for (auto& d : analysis::evo_family_8x8()) all.push_back(std::move(d));
  // Extension designs: pipelined and error-correctable variants.
  for (unsigned w : {8u, 16u}) {
    all.push_back({"Ca_" + std::to_string(w) + "_pipe", "proposed-ext", mult::make_ca(w),
                   [w] { return multgen::make_pipelined_netlist(w, mult::Summation::kAccurate); }});
    all.push_back({"Cc_" + std::to_string(w) + "_pipe", "proposed-ext", mult::make_cc(w),
                   [w] { return multgen::make_pipelined_netlist(w, mult::Summation::kCarryFree); }});
    all.push_back({"Ca_" + std::to_string(w) + "_corr", "proposed-ext", mult::make_ca(w),
                   [w] { return multgen::make_correctable_netlist(w, mult::Summation::kAccurate); }});
  }
  return all;
}

std::optional<analysis::DesignPoint> lookup(const std::string& name) {
  for (auto& d : all_designs()) {
    if (d.name == name) return d;
  }
  return std::nullopt;
}

int cmd_list() {
  std::printf("%-22s %-18s %s\n", "name", "category", "size");
  for (const auto& d : all_designs()) {
    std::printf("%-22s %-18s %ux%u\n", d.name.c_str(), d.category.c_str(), d.model->a_bits(),
                d.model->b_bits());
  }
  return 0;
}

int cmd_characterize(const analysis::DesignPoint& d, std::uint64_t samples, std::uint64_t seed,
                     bool force_full, bool analytic, const std::string& json_path) {
  error::ErrorMetrics r;
  std::string provenance;
  std::uint64_t shown_samples = 0;
  if (analytic) {
    // Exact compositional metrics in milliseconds, at any width the engine
    // covers. Falls back to a sweep (with the reason printed) outside its
    // envelope — pipelined/corrected extensions, two-sided 16-bit tables...
    std::string why;
    const auto spec = check::catalog_analytic_spec(d.name, &why);
    std::optional<error::AnalyticMetrics> am;
    if (spec) am = error::analytic_metrics(*spec, &why);
    if (am) {
      r = am->metrics;
      provenance = "analytic";
      shown_samples = r.samples;
      if (am->wide) {
        std::printf("%s (analytic/%s; counts exceed 64 bits, magnitudes shown saturated)\n",
                    d.name.c_str(), am->method.c_str());
        shown_samples = 0;
      }
    } else {
      std::printf("note: analytic engine unavailable for %s (%s); sweeping\n", d.name.c_str(),
                  why.c_str());
    }
  }
  if (provenance.empty()) {
    // Exhaustive characterization goes through the batched multithreaded
    // sweep, which makes even the 2^32-pair 16x16 space feasible (`--full`).
    const bool exhaustive = force_full || d.model->a_bits() + d.model->b_bits() <= 20;
    error::SweepConfig cfg;
    cfg.collect_pmf = false;  // only the summary metrics are printed
    cfg.collect_bit_probability = false;
    r = exhaustive ? error::sweep_exhaustive(*d.model, cfg).metrics
                   : error::sweep_sampled(*d.model, samples, seed, cfg).metrics;
    provenance = exhaustive ? "exhaustive" : "sampled";
    shown_samples = r.samples;
  }
  std::printf("%s (%s, %llu inputs)\n", d.name.c_str(), provenance.c_str(),
              static_cast<unsigned long long>(shown_samples));
  std::printf("  max error magnitude      %llu\n",
              static_cast<unsigned long long>(r.max_error));
  std::printf("  average error            %.6f\n", r.avg_error);
  std::printf("  average relative error   %.6f\n", r.avg_relative_error);
  std::printf("  error occurrences        %llu (p = %.4f)\n",
              static_cast<unsigned long long>(r.occurrences), r.error_probability());
  std::printf("  max-error occurrences    %llu\n",
              static_cast<unsigned long long>(r.max_error_occurrences));
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    // Error numbers plus the provenance that pins them: sampled sweeps are
    // a function of (seed, samples), exhaustive/analytic ones of the
    // operand space alone.
    json << "{\n  \"design\": \"" << d.name << "\",\n  \"provenance\": \"" << provenance
         << "\",\n  \"exhaustive\": " << (provenance != "sampled" ? "true" : "false")
         << ",\n  \"samples\": " << r.samples;
    if (provenance == "sampled") json << ",\n  \"seed\": " << seed;
    json << ",\n  \"max_error\": " << r.max_error
         << ",\n  \"avg_error\": " << r.avg_error
         << ",\n  \"avg_relative_error\": " << r.avg_relative_error
         << ",\n  \"error_probability\": " << r.error_probability()
         << ",\n  \"max_error_occurrences\": " << r.max_error_occurrences << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_implement(const analysis::DesignPoint& d) {
  if (!d.has_netlist()) {
    std::fprintf(stderr, "%s has no structural netlist\n", d.name.c_str());
    return 1;
  }
  const auto nl = d.netlist();
  const auto area = nl.area();
  const auto sta = timing::analyze(nl);
  const auto pwr = power::estimate(nl);
  std::printf("%s implementation (Virtex-7 model):\n", d.name.c_str());
  std::printf("  LUT6_2      %llu\n", static_cast<unsigned long long>(area.luts));
  std::printf("  CARRY4      %llu\n", static_cast<unsigned long long>(area.carry4));
  std::printf("  DSP         %llu\n", static_cast<unsigned long long>(area.dsp));
  std::printf("  slices est. %llu\n", static_cast<unsigned long long>(area.slices));
  std::printf("  latency     %.3f ns (critical output %s)\n", sta.critical_path_ns,
              sta.critical_output.c_str());
  std::printf("  energy      %.2f a.u./op, EDP %.2f a.u.\n", pwr.energy_au, pwr.edp_au);
  std::printf("  critical path:\n");
  for (const auto& el : sta.path) {
    std::printf("    %8.3f ns  %s\n", el.arrival_ns, el.point.c_str());
  }
  std::printf("  composition:\n");
  for (const auto& [prefix, count] : fabric::cell_histogram(nl)) {
    std::printf("    %-20s %zu cells\n", prefix.c_str(), count);
  }
  return 0;
}

int cmd_export(const analysis::DesignPoint& d, bool vhdl, const std::string& file) {
  if (!d.has_netlist()) {
    std::fprintf(stderr, "%s has no structural netlist\n", d.name.c_str());
    return 1;
  }
  const std::string entity = fabric::hdl_identifier(d.name);
  const std::string text =
      vhdl ? fabric::to_vhdl(d.netlist(), entity) : fabric::to_verilog(d.netlist(), entity);
  if (file.empty() || file == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(file);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes)\n", file.c_str(), text.size());
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: axmult_cli [--threads N] <command> [args]\n"
      "  list                              all library designs\n"
      "  characterize <design> [samples]   error metrics (exhaustive when feasible)\n"
      "    [--analytic]                    exact compositional metrics (any width,\n"
      "                                    milliseconds; falls back with a reason)\n"
      "    [--full]                        force exhaustive even for 16x16 (2^32 pairs)\n"
      "    [--seed N]                      sampled-sweep seed (default 1)\n"
      "    [--json FILE]                   also write metrics + provenance as JSON\n"
      "  implement <design>                area / timing / energy report\n"
      "  export-vhdl <design> [file]       structural VHDL (unisim primitives)\n"
      "  export-verilog <design> [file]    structural Verilog\n"
      "\n"
      "Sweep parallelism: --threads N or the AXMULT_THREADS environment\n"
      "variable (default: hardware concurrency).\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options so commands keep their positional argument layout.
  // --threads is consumed by the shared knob parser (common/parallel_for.hpp).
  std::vector<std::string> args;
  bool force_full = false;
  bool analytic = false;
  std::uint64_t seed = 1;
  std::string json_path;
  std::vector<std::string> stripped = strip_thread_args(argc, argv);
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const std::string& a = stripped[i];
    if (a == "--full") {
      force_full = true;
    } else if (a == "--analytic") {
      analytic = true;
    } else if (a == "--seed" && i + 1 < stripped.size()) {
      seed = std::strtoull(stripped[++i].c_str(), nullptr, 10);
    } else if (a == "--json" && i + 1 < stripped.size()) {
      json_path = stripped[++i];
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  if (cmd == "list") return cmd_list();
  if (args.size() < 2) return usage();
  const auto design = lookup(args[1]);
  if (!design) {
    std::fprintf(stderr, "unknown design '%s' (see `axmult_cli list`)\n", args[1].c_str());
    return 1;
  }
  if (cmd == "characterize") {
    const std::uint64_t samples =
        args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 1000000;
    return cmd_characterize(*design, samples, seed, force_full, analytic, json_path);
  }
  if (cmd == "implement") return cmd_implement(*design);
  if (cmd == "export-vhdl") return cmd_export(*design, true, args.size() > 2 ? args[2] : "");
  if (cmd == "export-verilog") return cmd_export(*design, false, args.size() > 2 ? args[2] : "");
  return usage();
}
