// axmult command-line interface.
//
//   axmult_cli list
//   axmult_cli characterize <design> [samples]
//   axmult_cli implement <design>
//   axmult_cli export-vhdl <design> [file]
//   axmult_cli export-verilog <design> [file]
//
// <design> is a name from `list` (the paper's designs at 4/8/16 bits plus
// the design-space family at 8 bits).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/catalog.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "error/metrics.hpp"
#include "fabric/hdl_export.hpp"
#include "fabric/transforms.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace {

using namespace axmult;

std::vector<analysis::DesignPoint> all_designs() {
  std::vector<analysis::DesignPoint> all;
  for (unsigned w : {4u, 8u, 16u}) {
    for (auto& d : analysis::paper_designs(w)) all.push_back(std::move(d));
  }
  for (auto& d : analysis::evo_family_8x8()) all.push_back(std::move(d));
  // Extension designs: pipelined and error-correctable variants.
  for (unsigned w : {8u, 16u}) {
    all.push_back({"Ca_" + std::to_string(w) + "_pipe", "proposed-ext", mult::make_ca(w),
                   [w] { return multgen::make_pipelined_netlist(w, mult::Summation::kAccurate); }});
    all.push_back({"Cc_" + std::to_string(w) + "_pipe", "proposed-ext", mult::make_cc(w),
                   [w] { return multgen::make_pipelined_netlist(w, mult::Summation::kCarryFree); }});
    all.push_back({"Ca_" + std::to_string(w) + "_corr", "proposed-ext", mult::make_ca(w),
                   [w] { return multgen::make_correctable_netlist(w, mult::Summation::kAccurate); }});
  }
  return all;
}

std::optional<analysis::DesignPoint> lookup(const std::string& name) {
  for (auto& d : all_designs()) {
    if (d.name == name) return d;
  }
  return std::nullopt;
}

int cmd_list() {
  std::printf("%-22s %-18s %s\n", "name", "category", "size");
  for (const auto& d : all_designs()) {
    std::printf("%-22s %-18s %ux%u\n", d.name.c_str(), d.category.c_str(), d.model->a_bits(),
                d.model->b_bits());
  }
  return 0;
}

int cmd_characterize(const analysis::DesignPoint& d, std::uint64_t samples) {
  const bool exhaustive = d.model->a_bits() + d.model->b_bits() <= 20;
  const auto r = exhaustive ? error::characterize_exhaustive(*d.model)
                            : error::characterize_sampled(*d.model, samples);
  std::printf("%s (%s, %llu inputs)\n", d.name.c_str(),
              exhaustive ? "exhaustive" : "sampled",
              static_cast<unsigned long long>(r.samples));
  std::printf("  max error magnitude      %llu\n",
              static_cast<unsigned long long>(r.max_error));
  std::printf("  average error            %.6f\n", r.avg_error);
  std::printf("  average relative error   %.6f\n", r.avg_relative_error);
  std::printf("  error occurrences        %llu (p = %.4f)\n",
              static_cast<unsigned long long>(r.occurrences), r.error_probability());
  std::printf("  max-error occurrences    %llu\n",
              static_cast<unsigned long long>(r.max_error_occurrences));
  return 0;
}

int cmd_implement(const analysis::DesignPoint& d) {
  if (!d.has_netlist()) {
    std::fprintf(stderr, "%s has no structural netlist\n", d.name.c_str());
    return 1;
  }
  const auto nl = d.netlist();
  const auto area = nl.area();
  const auto sta = timing::analyze(nl);
  const auto pwr = power::estimate(nl);
  std::printf("%s implementation (Virtex-7 model):\n", d.name.c_str());
  std::printf("  LUT6_2      %llu\n", static_cast<unsigned long long>(area.luts));
  std::printf("  CARRY4      %llu\n", static_cast<unsigned long long>(area.carry4));
  std::printf("  DSP         %llu\n", static_cast<unsigned long long>(area.dsp));
  std::printf("  slices est. %llu\n", static_cast<unsigned long long>(area.slices));
  std::printf("  latency     %.3f ns (critical output %s)\n", sta.critical_path_ns,
              sta.critical_output.c_str());
  std::printf("  energy      %.2f a.u./op, EDP %.2f a.u.\n", pwr.energy_au, pwr.edp_au);
  std::printf("  critical path:\n");
  for (const auto& el : sta.path) {
    std::printf("    %8.3f ns  %s\n", el.arrival_ns, el.point.c_str());
  }
  std::printf("  composition:\n");
  for (const auto& [prefix, count] : fabric::cell_histogram(nl)) {
    std::printf("    %-20s %zu cells\n", prefix.c_str(), count);
  }
  return 0;
}

int cmd_export(const analysis::DesignPoint& d, bool vhdl, const std::string& file) {
  if (!d.has_netlist()) {
    std::fprintf(stderr, "%s has no structural netlist\n", d.name.c_str());
    return 1;
  }
  const std::string entity = fabric::hdl_identifier(d.name);
  const std::string text =
      vhdl ? fabric::to_vhdl(d.netlist(), entity) : fabric::to_verilog(d.netlist(), entity);
  if (file.empty() || file == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(file);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes)\n", file.c_str(), text.size());
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: axmult_cli <command> [args]\n"
      "  list                              all library designs\n"
      "  characterize <design> [samples]   error metrics (exhaustive when feasible)\n"
      "  implement <design>                area / timing / energy report\n"
      "  export-vhdl <design> [file]       structural VHDL (unisim primitives)\n"
      "  export-verilog <design> [file]    structural Verilog\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (argc < 3) return usage();
  const auto design = lookup(argv[2]);
  if (!design) {
    std::fprintf(stderr, "unknown design '%s' (see `axmult_cli list`)\n", argv[2]);
    return 1;
  }
  if (cmd == "characterize") {
    const std::uint64_t samples = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1000000;
    return cmd_characterize(*design, samples);
  }
  if (cmd == "implement") return cmd_implement(*design);
  if (cmd == "export-vhdl") return cmd_export(*design, true, argc > 3 ? argv[3] : "");
  if (cmd == "export-verilog") return cmd_export(*design, false, argc > 3 ? argv[3] : "");
  return usage();
}
