// axjpeg — the baseline-JPEG workload CLI.
//
//   axjpeg encode <in> <out.jpg> [options]   encode a PGM (or scene:)
//   axjpeg decode <in.jpg> <out.pgm> [options]
//   axjpeg sweep [options]                   rate/distortion table across
//                                            backends on one image
//   axjpeg report <in.jpg>                   stream anatomy (markers, DQT,
//                                            rate) of an encoded file
//   axjpeg golden [--emit] [--path FILE]     replay (or regenerate) the
//                                            corpus golden file
//   axjpeg smoke                             end-to-end asserts: entropy
//                                            losslessness, exact==plain,
//                                            exact >= approx PSNR, adaptive
//                                            encode under a PSNR SLO
//
// Images: a path to a binary PGM, or "scene:WxH:SEED" for the procedural
// test scene (apps::make_test_scene).
//
// Backend specs: "plain" (the int-multiply reference), any registry name
// (nn::mac_backend_names: exact, ca8, cc8, cas8, ccs8, cb8, k8, w8,
// trunc8_4, ca16, cc16, approx4), or "front" for the --front file's point
// picked by --front-index. Append ":swap" for the operand-swapped port
// wiring (Cas/Ccs trick), e.g. "ca8:swap".
//
// encode options:
//   --quality Q        IJG quality factor 1..100        (default 75)
//   --backend SPEC     all four stages                  (default exact)
//   --fdct/--quant/--dequant/--idct SPEC   per-stage override
//   --front FILE       axdse front JSON-lines file backing spec "front"
//   --front-index I    point of the front to use        (default 0)
//   --threads N        worker threads (0 = hardware)    (default 0)
//   --adaptive         stripe-adaptive encode (RungGovernor tenant)
//   --slo-psnr P       adaptive: probe-PSNR floor in dB (default 38)
//   --ladder A,B,...   adaptive: rung backends          (default cc8,cas8,exact)
//   --stripe-rows N    adaptive: block rows per stripe  (default 2)
//   --probes K         adaptive: shadow probes/stripe   (default 4)
//   --seed S           adaptive: probe stream seed      (default 1)
//   --json FILE        adaptive: write the adapt::Report ledger JSON
//
// sweep options: --image SPEC (default scene:128x128:4242), --quality Q,
//   --backends a,b,... | all (default exact,ca8,cc8,cas8,k8,trunc8_4),
//   --front FILE / --front-index I (adds the front point), --threads N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adapt/ladder.hpp"
#include "apps/image.hpp"
#include "jpeg/adaptive.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/golden.hpp"
#include "jpeg/quant.hpp"
#include "nn/mac.hpp"

using namespace axmult;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: axjpeg <encode|decode|sweep|report|golden|smoke> [options]\n"
               "  see the header of tools/axjpeg.cpp for the option list\n");
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  int quality = 75;
  std::string backend = "exact";
  std::string fdct, quant, dequant, idct;  // per-stage overrides
  std::string front;
  std::size_t front_index = 0;
  unsigned threads = 0;
  bool adaptive = false;
  double slo_psnr = 38.0;
  std::string ladder = "cc8,cas8,exact";
  std::size_t stripe_rows = 2;
  std::size_t probes = 4;
  std::uint64_t seed = 1;
  std::string json;
  std::string image = "scene:128x128:4242";
  std::string backends = "exact,ca8,cc8,cas8,k8,trunc8_4";
  bool emit = false;
  std::string path = "tests/golden/jpeg/corpus.golden";
};

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(start, comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--quality") a.quality = std::atoi(value().c_str());
    else if (arg == "--backend") a.backend = value();
    else if (arg == "--fdct") a.fdct = value();
    else if (arg == "--quant") a.quant = value();
    else if (arg == "--dequant") a.dequant = value();
    else if (arg == "--idct") a.idct = value();
    else if (arg == "--front") a.front = value();
    else if (arg == "--front-index") a.front_index = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--threads") a.threads = static_cast<unsigned>(std::atoi(value().c_str()));
    else if (arg == "--adaptive") a.adaptive = true;
    else if (arg == "--slo-psnr") a.slo_psnr = std::atof(value().c_str());
    else if (arg == "--ladder") a.ladder = value();
    else if (arg == "--stripe-rows") a.stripe_rows = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--probes") a.probes = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--seed") a.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--json") a.json = value();
    else if (arg == "--image") a.image = value();
    else if (arg == "--backends") a.backends = value();
    else if (arg == "--emit") a.emit = true;
    else if (arg == "--path") a.path = value();
    else if (!arg.empty() && arg[0] == '-') usage();
    else a.positional.push_back(arg);
  }
  return a;
}

/// "scene:WxH:SEED" or a PGM path.
apps::Image load_image(const std::string& spec) {
  if (spec.rfind("scene:", 0) == 0) {
    unsigned width = 0, height = 0;
    unsigned long long seed = 0;
    if (std::sscanf(spec.c_str(), "scene:%ux%u:%llu", &width, &height, &seed) != 3 ||
        width == 0 || height == 0) {
      throw std::runtime_error("bad scene spec (want scene:WxH:SEED): " + spec);
    }
    return apps::make_test_scene(width, height, seed);
  }
  return apps::read_pgm(spec);
}

/// Backend spec -> StagePlan ("plain", registry name or "front", ":swap").
jpeg::StagePlan parse_stage(const std::string& spec, const Args& a) {
  std::string name = spec;
  bool swap = false;
  const std::size_t colon = name.find(':');
  if (colon != std::string::npos) {
    const std::string suffix = name.substr(colon + 1);
    if (suffix != "swap") throw std::runtime_error("bad backend suffix: " + spec);
    swap = true;
    name = name.substr(0, colon);
  }
  if (name == "plain") return jpeg::StagePlan{nullptr, swap};
  if (name == "front") {
    if (a.front.empty()) throw std::runtime_error("backend 'front' needs --front FILE");
    const auto points = adapt::backends_from_front(a.front);
    if (a.front_index >= points.size()) {
      throw std::runtime_error("--front-index past the " + std::to_string(points.size()) +
                               " usable front points");
    }
    return jpeg::StagePlan{points[a.front_index].backend, swap};
  }
  return jpeg::StagePlan{nn::shared_mac_backend(name), swap};
}

jpeg::CodecPlan parse_plan(const Args& a) {
  jpeg::CodecPlan plan = jpeg::CodecPlan{
      parse_stage(a.fdct.empty() ? a.backend : a.fdct, a),
      parse_stage(a.quant.empty() ? a.backend : a.quant, a),
      parse_stage(a.dequant.empty() ? a.backend : a.dequant, a),
      parse_stage(a.idct.empty() ? a.backend : a.idct, a)};
  return plan;
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

int run_encode(const Args& a) {
  if (a.positional.size() != 2) usage();
  const apps::Image image = load_image(a.positional[0]);
  if (a.adaptive) {
    const adapt::Ladder ladder = adapt::make_ladder(split_commas(a.ladder));
    jpeg::AdaptiveOptions opts;
    opts.slo_psnr_db = a.slo_psnr;
    opts.stripe_block_rows = a.stripe_rows;
    opts.probe_blocks = a.probes;
    opts.seed = a.seed;
    const jpeg::AdaptiveResult result = jpeg::encode_adaptive(image, a.quality, ladder, opts);
    write_bytes(a.positional[1], result.bytes);
    const auto& stats = result.report.layers.front();
    std::printf("adaptive encode: %ux%u q%d -> %zu bytes (%.3f bpp), ladder %s\n",
                image.width(), image.height(), a.quality, result.bytes.size(),
                jpeg::bits_per_pixel(result.bytes.size(), image.width(), image.height()),
                ladder.describe().c_str());
    std::printf("  stripes %llu, recomputes %llu, swaps %llu, worst drift %.3g (slo %.3g)\n",
                static_cast<unsigned long long>(stats.panels),
                static_cast<unsigned long long>(stats.recomputes),
                static_cast<unsigned long long>(stats.swaps), stats.worst_estimate,
                result.report.slo);
    std::printf("  %llu MACs + %llu monitor MACs, EDP/image %.6g au\n",
                static_cast<unsigned long long>(result.report.total_macs),
                static_cast<unsigned long long>(result.report.monitor_macs),
                result.report.edp_per_inference_au);
    if (!a.json.empty()) {
      std::ofstream out(a.json);
      out << result.report.to_json();
      std::printf("  ledger -> %s\n", a.json.c_str());
    }
    return 0;
  }
  const jpeg::CodecPlan plan = parse_plan(a);
  jpeg::EncodeStats stats;
  const auto bytes = jpeg::encode(image, a.quality, plan, a.threads, &stats);
  write_bytes(a.positional[1], bytes);
  std::printf("encoded %ux%u q%d -> %zu bytes (%.3f bpp), %llu table lookups\n",
              image.width(), image.height(), a.quality, bytes.size(),
              jpeg::bits_per_pixel(bytes.size(), image.width(), image.height()),
              static_cast<unsigned long long>(stats.lookups()));
  return 0;
}

int run_decode(const Args& a) {
  if (a.positional.size() != 2) usage();
  const jpeg::CodecPlan plan = parse_plan(a);
  const jpeg::Decoded decoded = jpeg::decode(read_bytes(a.positional[0]), plan, a.threads);
  decoded.image.write_pgm(a.positional[1]);
  std::printf("decoded %ux%u (%zu blocks), %llu table lookups -> %s\n", decoded.width,
              decoded.height, decoded.blocks.size(),
              static_cast<unsigned long long>(decoded.stats.lookups()),
              a.positional[1].c_str());
  return 0;
}

int run_sweep(const Args& a) {
  const apps::Image image = load_image(a.image);
  std::vector<std::string> names = a.backends == "all"
                                       ? nn::mac_backend_names()
                                       : split_commas(a.backends);
  if (!a.front.empty()) names.push_back("front");
  std::printf("%-12s %10s %10s %8s %12s %8s\n", "backend", "psnr_db", "ssim", "bpp",
              "lookups", "luts");
  for (const std::string& name : names) {
    Args stage_args = a;
    stage_args.backend = name;
    stage_args.fdct.clear();
    stage_args.quant.clear();
    stage_args.dequant.clear();
    stage_args.idct.clear();
    const jpeg::CodecPlan plan = parse_plan(stage_args);
    jpeg::EncodeStats es;
    const auto bytes = jpeg::encode(image, a.quality, plan, a.threads, &es);
    const jpeg::Decoded decoded = jpeg::decode(bytes, plan, a.threads);
    const std::uint64_t luts = plan.fdct.backend ? plan.fdct.backend->cost().luts : 0;
    std::printf("%-12s %10.3f %10.5f %8.3f %12llu %8llu\n", name.c_str(),
                apps::psnr(image, decoded.image), apps::ssim(image, decoded.image),
                jpeg::bits_per_pixel(bytes.size(), image.width(), image.height()),
                static_cast<unsigned long long>(es.lookups() + decoded.stats.lookups()),
                static_cast<unsigned long long>(luts));
  }
  return 0;
}

int run_report(const Args& a) {
  if (a.positional.size() != 1) usage();
  const auto bytes = read_bytes(a.positional[0]);
  const jpeg::Decoded decoded = jpeg::decode(bytes, jpeg::CodecPlan{}, a.threads);
  std::printf("%s: baseline JFIF, %ux%u, %zu bytes, %.3f bpp, %zu blocks\n",
              a.positional[0].c_str(), decoded.width, decoded.height, bytes.size(),
              jpeg::bits_per_pixel(bytes.size(), decoded.width, decoded.height),
              decoded.blocks.size());
  std::printf("quantization steps (natural order):\n");
  for (int row = 0; row < 8; ++row) {
    std::printf(" ");
    for (int col = 0; col < 8; ++col) std::printf(" %3d", decoded.steps[row * 8 + col]);
    std::printf("\n");
  }
  std::uint64_t nonzero = 0;
  for (const jpeg::Block& b : decoded.blocks) {
    for (int v : b) nonzero += v != 0;
  }
  std::printf("nonzero quantized coefficients: %llu of %zu\n",
              static_cast<unsigned long long>(nonzero), decoded.blocks.size() * 64);
  return 0;
}

int run_golden(const Args& a) {
  if (a.emit) {
    const auto entries = jpeg::compute_golden_entries(a.threads);
    jpeg::write_golden_corpus(entries, a.path);
    std::printf("axjpeg golden: wrote %zu entries -> %s\n", entries.size(), a.path.c_str());
    return 0;
  }
  const auto failure = jpeg::replay_golden_corpus(a.path, a.threads);
  if (failure) {
    std::printf("axjpeg golden: FAIL %s\n", failure->c_str());
    return 1;
  }
  std::printf("axjpeg golden: %s replayed clean\n", a.path.c_str());
  return 0;
}

int run_smoke(const Args& a) {
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("  %s %s\n", ok ? "ok  " : "FAIL", what);
    if (!ok) ++failures;
  };
  const apps::Image scene = apps::make_test_scene(96, 64, 7);
  const int quality = 60;

  // 1. Entropy layer is lossless: decode returns the exact quantized
  //    coefficients the encoder produced, and the DQT steps survive.
  const jpeg::CodecPlan exact_plan = jpeg::CodecPlan::uniform(nn::shared_mac_backend("exact"));
  const jpeg::Quantizer quant(jpeg::Component::kLuma, quality);
  const std::vector<jpeg::Block> blocks =
      jpeg::encode_blocks(scene, quant, exact_plan, a.threads);
  const auto bytes = jpeg::encode(scene, quality, exact_plan, a.threads);
  const jpeg::Decoded decoded = jpeg::decode(bytes, exact_plan, a.threads);
  check(decoded.blocks == blocks, "entropy roundtrip returns identical coefficients");
  check(decoded.steps == quant.steps(), "DQT steps survive the stream");

  // 2. The exact backend is bit-identical to the plain-int reference.
  const auto plain_bytes = jpeg::encode(scene, quality, jpeg::CodecPlan{}, a.threads);
  check(plain_bytes == bytes, "exact backend == plain int multiply, byte for byte");

  // 3. No approximate backend beats exact PSNR.
  const double exact_psnr = apps::psnr(scene, decoded.image);
  bool none_beat = true;
  for (const char* name : {"ca8", "cc8", "k8", "trunc8_4"}) {
    const jpeg::CodecPlan plan = jpeg::CodecPlan::uniform(nn::shared_mac_backend(name));
    const jpeg::Decoded d = jpeg::decode(jpeg::encode(scene, quality, plan, a.threads), plan,
                                         a.threads);
    if (apps::psnr(scene, d.image) > exact_psnr) {
      std::printf("       %s beats exact PSNR\n", name);
      none_beat = false;
    }
  }
  check(none_beat, "exact >= every approximate backend on PSNR");

  // 4. Adaptive encode terminates, honors the ladder and stays near the
  //    exact pipeline (the policy cold-starts at the exact top).
  const adapt::Ladder ladder = adapt::make_ladder({"cc8", "cas8", "exact"});
  jpeg::AdaptiveOptions opts;
  opts.slo_psnr_db = 36.0;
  const jpeg::AdaptiveResult adaptive = jpeg::encode_adaptive(scene, quality, ladder, opts);
  const jpeg::Decoded adecoded = jpeg::decode(adaptive.bytes, jpeg::CodecPlan{});
  const double adaptive_psnr = apps::psnr(scene, adecoded.image);
  check(adaptive_psnr >= exact_psnr - 3.0, "adaptive encode stays within 3 dB of exact");
  check(adaptive.report.total_macs > 0 && adaptive.report.layers.front().windows > 0,
        "adaptive ledger billed compute and monitoring");

  std::printf("axjpeg smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "encode") return run_encode(a);
    if (cmd == "decode") return run_decode(a);
    if (cmd == "sweep") return run_sweep(a);
    if (cmd == "report") return run_report(a);
    if (cmd == "golden") return run_golden(a);
    if (cmd == "smoke") return run_smoke(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axjpeg: %s\n", e.what());
    return 1;
  }
  usage();
}
