// axcheck — property-based differential conformance harness.
//
//   axcheck fuzz [options]          cross-check every backend on random
//                                   subjects/operands; exit 1 on failures
//   axcheck subjects [--width N]    list the deterministic subject keys
//   axcheck replay <repro.json>     re-execute a shrunk counterexample
//   axcheck emit-golden [--dir D]   (re)generate the golden vector files
//   axcheck golden [--dir D]        replay every golden file in a directory
//   axcheck serve [options]         differential check of the axserve
//                                   daemon: served characterize/infer
//                                   replies vs the direct library calls
//
// serve options:
//   --seed S            operand/panel seed                (default 1)
//   --clients N         concurrent infer clients          (default 4)
//   --subject KEY       characterize this dse key (repeatable; the bare
//                       key, no "dse:" prefix; default = loadgen pool)
//   --backend NAME      infer through this nn backend (repeatable;
//                       default exact, ca8, cc8)
//   --socket PATH       daemon socket path (default: per-pid temp path)
//
// fuzz options:
//   --seed S            run seed                          (default 1)
//   --iters N           dse configs sampled from --space  (default 12)
//   --batches N         operand batches per subject       (default 6)
//   --batch-size N      pairs per batch                   (default 192)
//   --width N           catalog width 4/8/16              (default 8)
//   --space NAME        dse::make_space preset            (default smoke8)
//   --subject KEY       check exactly this subject key (repeatable;
//                       disables the catalog/dse subject list)
//   --no-catalog / --no-elem / --no-seq / --no-gemm / --no-analytic
//   --repro-dir D       write shrunk repro files here     (default off)
//   --coverage FILE     write per-subject coverage JSON lines
//   --report FILE       write the full report JSON
//   --threads N         subject shards (also AXMULT_THREADS); the report
//                       is bit-identical for any value
//
// Subject keys (see src/check/subject.hpp): dse:<config key>,
// catalog:<name>, elem:a4x2, and any of those + "+flip:<cell>:<bit>".
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/analytic.hpp"
#include "check/backends.hpp"
#include "check/golden.hpp"
#include "check/harness.hpp"
#include "check/serve_diff.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"

using namespace axmult;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: axcheck <fuzz|subjects|replay|emit-golden|golden|serve> [options]\n"
               "  see the header of tools/axcheck.cpp for the option list\n");
  std::exit(2);
}

std::uint64_t to_u64(const std::string& s) { return std::strtoull(s.c_str(), nullptr, 10); }

int run_fuzz(check::FuzzOptions opts, const std::vector<std::string>& subjects,
             const std::string& coverage_file, const std::string& report_file) {
  check::FuzzReport report;
  if (subjects.empty()) {
    report = check::fuzz(opts);
  } else {
    report.seed = opts.seed;
    report.subjects.resize(subjects.size());
    for (std::size_t i = 0; i < subjects.size(); ++i) {
      report.subjects[i] =
          check::check_subject(subjects[i], opts, derive_stream_seed(opts.seed, i));
      report.total_pairs += report.subjects[i].pairs;
    }
    if (!opts.repro_dir.empty()) {
      for (const auto& s : report.subjects) {
        for (const auto& cx : s.failures) (void)check::write_repro(cx, opts.repro_dir);
      }
    }
  }

  if (!coverage_file.empty()) {
    std::ofstream out(coverage_file);
    for (const auto& s : report.subjects) out << s.coverage_json << '\n';
  }
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    out << report.to_json();
  }

  std::size_t min_cov_idx = 0;
  for (std::size_t i = 0; i < report.subjects.size(); ++i) {
    if (report.subjects[i].coverage < report.subjects[min_cov_idx].coverage) min_cov_idx = i;
  }
  std::printf("axcheck fuzz: %zu subjects, %zu operand pairs, %zu failures\n",
              report.subjects.size(), report.total_pairs, report.failure_count());
  if (!report.subjects.empty()) {
    const auto& worst = report.subjects[min_cov_idx];
    std::printf("  lowest toggle coverage: %.1f%% (%zu/%zu nets) on %s\n",
                100.0 * worst.coverage, worst.covered, worst.nets, worst.key.c_str());
  }
  for (const auto& s : report.subjects) {
    for (const auto& cx : s.failures) {
      std::printf("  FAIL %s [%s] %s vs %s at a=%llu b=%llu (%llu vs %llu)%s%s\n",
                  cx.subject.c_str(), cx.kind.c_str(), cx.lhs.c_str(), cx.rhs.c_str(),
                  static_cast<unsigned long long>(cx.a), static_cast<unsigned long long>(cx.b),
                  static_cast<unsigned long long>(cx.lhs_value),
                  static_cast<unsigned long long>(cx.rhs_value),
                  cx.net.empty() ? "" : " net ", cx.net.c_str());
    }
  }
  for (const auto& f : report.sequential_failures) std::printf("  FAIL %s\n", f.c_str());
  for (const auto& f : report.gemm_failures) std::printf("  FAIL %s\n", f.c_str());
  return report.failure_count() == 0 ? 0 : 1;
}

int run_replay(const std::string& path) {
  const check::Counterexample cx = check::read_repro(path);
  std::printf("repro %s: subject %s, %s vs %s at a=%llu b=%llu\n", path.c_str(),
              cx.subject.c_str(), cx.lhs.c_str(), cx.rhs.c_str(),
              static_cast<unsigned long long>(cx.a), static_cast<unsigned long long>(cx.b));
  const check::Subject s = check::resolve_subject(cx.subject);
  check::Oracle oracle(s);
  bool reproduced = false;
  if (cx.kind == "flip" && s.reference) {
    fabric::Evaluator ref(*s.reference);
    const std::uint64_t want = ref.eval_word(cx.a, s.a_bits, cx.b, s.b_bits);
    const std::uint64_t got = oracle.eval_one(check::BackendId::kScalar, cx.a, cx.b);
    std::printf("  reference=%llu flipped=%llu\n", static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got));
    reproduced = want != got;
    if (reproduced) {
      const std::string net = check::first_divergent_net(*s.reference, s.netlist, s.a_bits,
                                                         s.b_bits, cx.a, cx.b);
      std::printf("  first divergent net: %s\n", net.c_str());
    }
  } else {
    for (const check::BackendId id : oracle.backends()) {
      std::printf("  %-9s %llu\n", check::backend_name(id),
                  static_cast<unsigned long long>(oracle.eval_one(id, cx.a, cx.b)));
    }
    const auto mismatch = oracle.run(&cx.a, &cx.b, 1);
    reproduced = mismatch.has_value();
  }
  std::printf("  %s\n", reproduced ? "reproduced" : "did NOT reproduce");
  return reproduced ? 1 : 0;
}

int run_serve(check::ServeDiffOptions opts) {
  const check::ServeDiffReport report = check::serve_diff(opts);
  std::printf("axcheck serve: %zu characterize + %zu infer requests checked, %zu failures\n",
              report.characterize_checked, report.infer_requests_checked,
              report.failures.size());
  for (const auto& f : report.failures) std::printf("  FAIL %s\n", f.c_str());
  return report.ok() ? 0 : 1;
}

int run_golden(const std::string& dir) {
  int failures = 0;
  std::size_t files = 0;
  for (const check::GoldenSpec& spec : check::default_golden_set()) {
    const std::string path = dir + "/" + spec.file;
    try {
      const check::GoldenFile g = check::read_golden(path);
      ++files;
      if (const auto fail = check::replay_golden(g)) {
        std::printf("  FAIL %s\n", fail->c_str());
        ++failures;
      } else {
        std::printf("  ok   %s (%zu rows)\n", spec.file.c_str(), g.rows.size());
      }
    } catch (const std::exception& e) {
      std::printf("  FAIL %s: %s\n", spec.file.c_str(), e.what());
      ++failures;
    }
  }
  const std::string metrics_path = dir + "/" + check::kAnalyticMetricsGoldenFile;
  ++files;
  if (const auto fail = check::replay_analytic_metrics_golden(metrics_path)) {
    std::printf("  FAIL %s: %s\n", check::kAnalyticMetricsGoldenFile, fail->c_str());
    ++failures;
  } else {
    std::printf("  ok   %s (%zu subjects)\n", check::kAnalyticMetricsGoldenFile,
                check::analytic_golden_subjects().size());
  }
  std::printf("axcheck golden: %zu files, %d failures\n", files, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args = strip_thread_args(argc, argv);
  if (args.empty()) usage();
  const std::string& command = args[0];

  check::FuzzOptions opts;
  check::ServeDiffOptions serve_opts;
  std::vector<std::string> subjects;
  std::string coverage_file;
  std::string report_file;
  std::string dir = "tests/golden";
  std::string positional;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage();
      return args[i];
    };
    if (a == "--seed") serve_opts.seed = opts.seed = to_u64(value());
    else if (a == "--clients") serve_opts.clients = static_cast<unsigned>(to_u64(value()));
    else if (a == "--backend") serve_opts.backends.push_back(value());
    else if (a == "--socket") serve_opts.socket_path = value();
    else if (a == "--iters") opts.iters = static_cast<unsigned>(to_u64(value()));
    else if (a == "--batches") opts.batches = static_cast<unsigned>(to_u64(value()));
    else if (a == "--batch-size") opts.batch_size = static_cast<std::size_t>(to_u64(value()));
    else if (a == "--width") opts.width = static_cast<unsigned>(to_u64(value()));
    else if (a == "--space") opts.space = value();
    else if (a == "--subject") subjects.push_back(value());
    else if (a == "--no-catalog") opts.include_catalog = false;
    else if (a == "--no-elem") opts.include_elem = false;
    else if (a == "--no-seq") opts.sequential = false;
    else if (a == "--no-analytic") opts.analytic = false;
    else if (a == "--no-gemm") opts.gemm = false;
    else if (a == "--repro-dir") opts.repro_dir = value();
    else if (a == "--coverage") coverage_file = value();
    else if (a == "--report") report_file = value();
    else if (a == "--dir") dir = value();
    else if (!a.empty() && a[0] != '-' && positional.empty()) positional = a;
    else usage();
  }

  try {
    if (command == "fuzz") return run_fuzz(opts, subjects, coverage_file, report_file);
    if (command == "subjects") {
      for (const auto& k : check::fuzz_subject_keys(opts)) std::printf("%s\n", k.c_str());
      return 0;
    }
    if (command == "replay") {
      if (positional.empty()) usage();
      return run_replay(positional);
    }
    if (command == "emit-golden") {
      const std::size_t n = check::emit_golden_set(dir);
      check::write_analytic_metrics_golden(dir + "/" + check::kAnalyticMetricsGoldenFile);
      std::printf("axcheck emit-golden: wrote %zu files under %s\n", n + 1, dir.c_str());
      return 0;
    }
    if (command == "golden") return run_golden(dir);
    if (command == "serve") {
      serve_opts.keys = subjects;
      return run_serve(std::move(serve_opts));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axcheck: %s\n", e.what());
    return 2;
  }
  usage();
}
