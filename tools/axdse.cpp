// axdse — automated design-space exploration over the approximate-
// multiplier space.
//
//   axdse spaces                     list the named search spaces
//   axdse explore [options]         run a search, write the front JSON
//   axdse resume <checkpoint.json>  replay a checkpointed search (the
//                                   persistent cache makes completed
//                                   evaluations instant)
//   axdse front <front.json>        print a front file as a table
//   axdse export <front.json> --index N [--hdl verilog|vhdl] [--out FILE]
//                                   emit the selected design as HDL
//   axdse cache-compact <cache.json>  rewrite an evaluation cache in place,
//                                   dropping stale-version entries,
//                                   superseded duplicates and crash debris
//
// explore options:
//   --space NAME        search space preset            (default smoke8)
//   --strategy S        exhaustive | random | nsga2 | surrogate
//                                                      (default exhaustive)
//   --budget N          evaluation budget              (default 0 = strategy default)
//   --population N      NSGA-II/surrogate population   (default 32)
//   --generations N     NSGA-II/surrogate generations  (default 8)
//   --proposals N       surrogate candidates screened per generation (default 256)
//   --explore W         surrogate novelty bonus weight (default 0.25)
//   --farm N            evaluation farm: fork N worker processes
//   --farm-socket PATH  evaluation farm: attach to a running axserve daemon
//   --quiet             suppress the periodic progress lines on stderr
//   --seed S            search RNG seed                (default 1)
//   --objectives A,B,C  minimized objectives           (default luts,delay,mre)
//                       (luts carry4 delay mre nmed maxerr errprob energy edp)
//   --cache FILE        persistent evaluation cache    (default in-memory)
//   --front FILE        front JSON output              (default axdse_front.json)
//   --checkpoint FILE   checkpoint JSON for resume     (default none)
//   --samples N         sampled-sweep budget           (default 1048576)
//   --eval-seed S       sampled-sweep seed             (default 1)
//   --exhaustive-bits N netlist-exhaustive threshold   (default 20)
//   --no-analytic       disable the exact analytic error backend (forces
//                       sampled sweeps where exhaustion is infeasible)
//   --power-vectors N   toggle vectors per config      (default 1024)
//   --gaussian ma,sa,mb,sb  asymmetric operand distribution (swap-sensitive)
//   --smoke             CI mode: exhaustive smoke8 search, front written to
//                       axdse_smoke_front.json, paper anchors verified.
//                       With --strategy surrogate: equal-budget surrogate
//                       vs random duel on smoke8, front written to
//                       axdse_surrogate_smoke_front.json, fails when the
//                       surrogate front's hypervolume falls below random's
//   --threads N         evaluation threads (also AXMULT_THREADS); results
//                       are bit-identical for any value
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "common/parallel_for.hpp"
#include "common/table.hpp"
#include "dse/cache.hpp"
#include "dse/evaluate.hpp"
#include "dse/search.hpp"
#include "dse/space.hpp"
#include "fabric/hdl_export.hpp"

using namespace axmult;

namespace {

struct Options {
  std::string command;
  std::string positional;
  std::string space = "smoke8";
  std::string strategy = "exhaustive";
  std::string objectives = "luts,delay,mre";
  std::string cache;
  std::string front = "axdse_front.json";
  std::string checkpoint;
  std::string gaussian;
  std::string hdl = "verilog";
  std::string out;
  std::string farm_socket;
  std::uint64_t budget = 0;
  unsigned population = 32;
  unsigned generations = 8;
  unsigned proposals = 256;
  double explore_weight = 0.25;
  unsigned farm_workers = 0;
  std::uint64_t seed = 1;
  std::uint64_t samples = std::uint64_t{1} << 20;
  std::uint64_t eval_seed = 1;
  unsigned exhaustive_bits = 20;
  std::uint64_t power_vectors = 1024;
  std::size_t index = 0;
  bool smoke = false;
  bool analytic = true;
  bool quiet = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: axdse <spaces|explore|resume|front|export|cache-compact> [options]\n"
               "  see the header of tools/axdse.cpp for the option list\n");
  std::exit(2);
}

Options parse(const std::vector<std::string>& args) {
  Options opt;
  if (args.empty()) usage();
  opt.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage();
      return args[++i];
    };
    if (a == "--space") {
      opt.space = value();
    } else if (a == "--strategy") {
      opt.strategy = value();
    } else if (a == "--objectives") {
      opt.objectives = value();
    } else if (a == "--cache") {
      opt.cache = value();
    } else if (a == "--front") {
      opt.front = value();
    } else if (a == "--checkpoint") {
      opt.checkpoint = value();
    } else if (a == "--gaussian") {
      opt.gaussian = value();
    } else if (a == "--hdl") {
      opt.hdl = value();
    } else if (a == "--out") {
      opt.out = value();
    } else if (a == "--budget") {
      opt.budget = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--population") {
      opt.population = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (a == "--generations") {
      opt.generations = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (a == "--proposals") {
      opt.proposals = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (a == "--explore") {
      opt.explore_weight = std::strtod(value().c_str(), nullptr);
    } else if (a == "--farm") {
      opt.farm_workers = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (a == "--farm-socket") {
      opt.farm_socket = value();
    } else if (a == "--seed") {
      opt.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--samples") {
      opt.samples = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--eval-seed") {
      opt.eval_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--exhaustive-bits") {
      opt.exhaustive_bits = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (a == "--power-vectors") {
      opt.power_vectors = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--index") {
      opt.index = static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else if (a == "--smoke") {
      opt.smoke = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "--no-analytic") {
      opt.analytic = false;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "axdse: unknown option '%s'\n", a.c_str());
      usage();
    } else if (opt.positional.empty()) {
      opt.positional = a;
    } else {
      usage();
    }
  }
  return opt;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmd_spaces() {
  Table t({"Space", "Widths", "Leaves", "Summations", "Max trunc", "Swap", "Signed", "Flips"});
  for (const std::string& name : dse::space_names()) {
    const dse::SpaceSpec spec = dse::make_space(name);
    std::string widths;
    for (const unsigned w : spec.widths) widths += (widths.empty() ? "" : ",") + std::to_string(w);
    std::string leaves;
    for (const auto leaf : spec.leaves) {
      leaves += (leaves.empty() ? "" : ",") + std::string(dse::leaf_token(leaf));
    }
    std::string sums;
    for (const auto s : spec.summations) sums += dse::summation_char(s);
    t.add_row({name, widths, leaves, sums, std::to_string(spec.max_trunc),
               spec.allow_swap ? "yes" : "no", spec.allow_signed ? "yes" : "no",
               std::to_string(spec.max_tt_flips)});
  }
  t.print("Named search spaces");
  return 0;
}

void print_front(const std::vector<dse::EvaluatedPoint>& front, const std::string& title) {
  Table t({"#", "Key", "Name", "LUTs", "CARRY4", "Crit path (ns)", "MRE", "NMED", "Max err",
           "Energy (a.u.)"});
  for (std::size_t i = 0; i < front.size(); ++i) {
    const dse::EvaluatedPoint& p = front[i];
    t.add_row({std::to_string(i), p.key, dse::display_name(p.config),
               std::to_string(p.objectives.luts), std::to_string(p.objectives.carry4),
               Table::num(p.objectives.critical_path_ns, 3), Table::num(p.objectives.mre, 6),
               Table::num(p.objectives.nmed, 6), std::to_string(p.objectives.max_error),
               Table::num(p.objectives.energy_au, 2)});
  }
  t.print(title);
}

/// Verifies the paper's hand-crafted anchors against a computed front:
/// each anchor inside the space must reappear as a non-dominated point,
/// and any perturbed-leaf front point that dominates an anchor is
/// reported (that is the "found something better than the paper" signal).
bool report_anchors(const dse::SpaceSpec& space, const dse::SearchOptions& search,
                    const dse::SearchResult& result) {
  std::vector<dse::Config> anchors;
  for (const unsigned w : space.widths) {
    for (const dse::Config::Leaf leaf : space.leaves) {
      if (leaf != dse::Config::Leaf::kApprox4x4) continue;
      anchors.push_back(dse::paper_ca(w));
      if (space.summations.size() > 1) anchors.push_back(dse::paper_cc(w));
    }
  }
  if (anchors.empty()) return true;
  dse::EvalCache cache(search.cache_path);
  const std::vector<dse::Objectives> anchor_obj =
      dse::evaluate_all(anchors, &cache, search.eval, search.threads);
  bool all_on_front = true;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const std::string key = dse::config_key(anchors[i]);
    bool on_front = false;
    for (const dse::EvaluatedPoint& p : result.front) {
      if (p.key == key) {
        on_front = true;
        break;
      }
    }
    std::printf("anchor %-14s %s: %s\n", dse::display_name(anchors[i]).c_str(), key.c_str(),
                on_front ? "non-dominated" : "DOMINATED");
    if (!on_front) all_on_front = false;
    const std::vector<double> anchor_cost = dse::cost_vector(anchor_obj[i], search.objectives);
    for (const dse::EvaluatedPoint& p : result.front) {
      if (p.config.flips.empty()) continue;
      if (analysis::dominates(dse::cost_vector(p.objectives, search.objectives), anchor_cost)) {
        std::printf("  dominated by perturbed variant %s (%s)\n",
                    dse::display_name(p.config).c_str(), p.key.c_str());
      }
    }
  }
  return all_on_front;
}

/// Wires the periodic progress reporter into `search`: at most one line
/// per half second to stderr with evaluated/total, cache-hit rate and
/// elapsed/ETA (ETA from the evaluation rate so far; "?" while the total
/// is unknown or nothing is evaluated yet).
void attach_progress(dse::SearchOptions& search, bool quiet) {
  if (quiet) return;
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto last = std::make_shared<Clock::time_point>(start);
  const auto ticked = std::make_shared<bool>(false);
  search.progress = [start, last, ticked](const dse::SearchProgress& p) {
    const auto now = Clock::now();
    // First and final slices always print (a short run that stops early —
    // e.g. an exhausted space — still gets one line); in between, rate-
    // limit to one line per 500 ms.
    const bool final_tick = p.total != 0 && p.evaluated >= p.total;
    if (!final_tick && *ticked && now - *last < std::chrono::milliseconds(500)) return;
    *ticked = true;
    *last = now;
    const double elapsed = std::chrono::duration<double>(now - start).count();
    const double hit_rate =
        p.evaluated ? 100.0 * static_cast<double>(p.cache_hits) / static_cast<double>(p.evaluated)
                    : 0.0;
    std::string eta = "?";
    if (p.total != 0 && p.evaluated != 0) {
      const double rate = static_cast<double>(p.evaluated) / std::max(elapsed, 1e-9);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fs",
                    static_cast<double>(p.total - std::min(p.evaluated, p.total)) / rate);
      eta = buf;
    }
    if (p.total != 0) {
      std::fprintf(stderr, "axdse: gen %u: %llu/%llu evaluated, %.1f%% cache hits, %.1fs elapsed, ETA %s\n",
                   p.generation, static_cast<unsigned long long>(p.evaluated),
                   static_cast<unsigned long long>(p.total), hit_rate, elapsed, eta.c_str());
    } else {
      std::fprintf(stderr, "axdse: gen %u: %llu evaluated, %.1f%% cache hits, %.1fs elapsed\n",
                   p.generation, static_cast<unsigned long long>(p.evaluated), hit_rate, elapsed);
    }
  };
}

int explore_with(const dse::SpaceSpec& space, const dse::SearchOptions& search,
                 bool check_anchors) {
  const dse::SearchResult result = dse::run_search(space, search);
  print_front(result.front, "Pareto front (" + space.name + ", " +
                                std::string(dse::strategy_name(search.strategy)) + ")");
  std::printf("evaluations=%llu cache_hits=%llu (%.1f%%) archive=%llu front=%zu\n",
              static_cast<unsigned long long>(result.evaluations),
              static_cast<unsigned long long>(result.cache_hits),
              result.evaluations
                  ? 100.0 * static_cast<double>(result.cache_hits) /
                        static_cast<double>(result.evaluations)
                  : 0.0,
              static_cast<unsigned long long>(result.archive_size), result.front.size());
  if (!search.front_path.empty()) std::printf("wrote %s\n", search.front_path.c_str());
  if (check_anchors && !report_anchors(space, search, result)) {
    std::fprintf(stderr, "axdse: a paper anchor fell off the front\n");
    return 1;
  }
  return 0;
}

/// Smoke-mode anchor for the analytic error backend: the 16-bit Ca config
/// must evaluate through the analytic path (provenance "analytic") and its
/// exact metrics must be statistically consistent with an independent
/// sampled sweep of the same config.
bool smoke_analytic_anchor() {
  const dse::Config ca16 = dse::paper_ca(16);
  dse::EvalOptions eval;  // defaults: analytic enabled
  const dse::Objectives exact = dse::evaluate(ca16, eval);
  std::printf("analytic anchor %s: provenance=%s mre=%.9f errprob=%.6f maxerr=%llu\n",
              dse::display_name(ca16).c_str(), exact.provenance.c_str(), exact.mre,
              exact.error_probability, static_cast<unsigned long long>(exact.max_error));
  if (exact.provenance != "analytic") {
    std::fprintf(stderr, "axdse: expected analytic provenance for Ca_16, got %s\n",
                 exact.provenance.c_str());
    return false;
  }
  eval.analytic = false;
  const dse::Objectives sampled = dse::evaluate(ca16, eval);
  const bool mre_ok = std::abs(sampled.mre - exact.mre) <= 0.05 * exact.mre;
  const bool max_ok = sampled.max_error <= exact.max_error;
  const bool prob_ok = std::abs(sampled.error_probability - exact.error_probability) <= 0.02;
  if (!mre_ok || !max_ok || !prob_ok) {
    std::fprintf(stderr,
                 "axdse: sampled sweep disagrees with analytic metrics "
                 "(mre %.9f vs %.9f, maxerr %llu vs %llu, errprob %.6f vs %.6f)\n",
                 sampled.mre, exact.mre, static_cast<unsigned long long>(sampled.max_error),
                 static_cast<unsigned long long>(exact.max_error), sampled.error_probability,
                 exact.error_probability);
    return false;
  }
  std::printf("analytic anchor cross-check against sampled sweep: ok\n");
  return true;
}

/// Hypervolume of a front against a shared reference point (minimization).
double front_hypervolume(const std::vector<dse::EvaluatedPoint>& front,
                         const std::vector<dse::Objective>& objectives,
                         const std::vector<double>& ref) {
  std::vector<std::vector<double>> costs;
  costs.reserve(front.size());
  for (const dse::EvaluatedPoint& p : front) {
    costs.push_back(dse::cost_vector(p.objectives, objectives));
  }
  return analysis::hypervolume(costs, ref);
}

/// Reference point for a hypervolume duel: slightly beyond the
/// per-objective worst across every competing front, so each point of
/// each front contributes.
std::vector<double> duel_reference(
    const std::vector<const std::vector<dse::EvaluatedPoint>*>& fronts,
    const std::vector<dse::Objective>& objectives) {
  std::vector<double> ref(objectives.size(), 1e-9);
  for (const auto* front : fronts) {
    for (const dse::EvaluatedPoint& p : *front) {
      const std::vector<double> cost = dse::cost_vector(p.objectives, objectives);
      for (std::size_t i = 0; i < cost.size(); ++i) ref[i] = std::max(ref[i], cost[i]);
    }
  }
  for (double& r : ref) r = r * 1.1 + 1e-9;
  return ref;
}

/// The surrogate smoke anchor: surrogate vs random at the same confirmed-
/// evaluation budget on smoke8; the surrogate front's hypervolume must not
/// fall below random's.
int cmd_explore_surrogate_smoke(const Options& opt) {
  const dse::SpaceSpec space = dse::make_space("smoke8");
  dse::SearchOptions search;
  search.strategy = dse::Strategy::kSurrogate;
  search.budget = 48;
  search.population = 12;
  search.generations = 3;
  search.proposals = 96;
  search.seed = opt.seed;
  search.cache_path = opt.cache;
  search.front_path = "axdse_surrogate_smoke_front.json";
  attach_progress(search, opt.quiet);
  const dse::SearchResult surrogate = dse::run_search(space, search);
  print_front(surrogate.front, "Surrogate front (smoke8, budget 48)");

  search.strategy = dse::Strategy::kRandom;
  search.front_path.clear();
  search.progress = nullptr;
  const dse::SearchResult random = dse::run_search(space, search);

  const std::vector<double> ref = duel_reference({&surrogate.front, &random.front},
                                                 search.objectives);
  const double hv_surrogate = front_hypervolume(surrogate.front, search.objectives, ref);
  const double hv_random = front_hypervolume(random.front, search.objectives, ref);
  std::printf("equal-budget duel (48 evals): hv(surrogate)=%.6g hv(random)=%.6g\n", hv_surrogate,
              hv_random);
  std::printf("wrote axdse_surrogate_smoke_front.json\n");
  if (hv_surrogate < hv_random) {
    std::fprintf(stderr, "axdse: surrogate front dominated by random at equal budget\n");
    return 1;
  }
  return 0;
}

int cmd_cache_compact(const Options& opt) {
  if (opt.positional.empty()) usage();
  dse::EvalCache cache(opt.positional);
  const dse::EvalCache::CompactStats stats = cache.compact();
  std::printf("compacted %s: kept=%zu dropped_stale=%zu dropped_duplicate=%zu "
              "dropped_malformed=%zu\n",
              opt.positional.c_str(), stats.kept, stats.dropped_stale, stats.dropped_duplicate,
              stats.dropped_malformed);
  return 0;
}

int cmd_explore(const Options& opt) {
  if (opt.smoke && opt.strategy == "surrogate") return cmd_explore_surrogate_smoke(opt);
  dse::SearchOptions search;
  dse::SpaceSpec space;
  if (opt.smoke) {
    space = dse::make_space("smoke8");
    search.strategy = dse::Strategy::kExhaustive;
    search.front_path = "axdse_smoke_front.json";
    search.cache_path = opt.cache;
  } else {
    space = dse::make_space(opt.space);
    search.strategy = dse::parse_strategy(opt.strategy);
    search.front_path = opt.front;
    search.cache_path = opt.cache;
    search.checkpoint_path = opt.checkpoint;
  }
  search.budget = opt.budget;
  search.population = opt.population;
  search.generations = opt.generations;
  search.proposals = opt.proposals;
  search.explore_weight = opt.explore_weight;
  search.farm_workers = opt.farm_workers;
  search.farm_socket = opt.farm_socket;
  search.seed = opt.seed;
  attach_progress(search, opt.quiet);
  search.objectives.clear();
  for (const std::string& name : split_csv(opt.objectives)) {
    search.objectives.push_back(dse::parse_objective(name));
  }
  search.eval.samples = opt.samples;
  search.eval.seed = opt.eval_seed;
  search.eval.exhaustive_bits = opt.exhaustive_bits;
  search.eval.power_vectors = opt.power_vectors;
  if (!opt.gaussian.empty()) {
    const std::vector<std::string> parts = split_csv(opt.gaussian);
    if (parts.size() != 4) usage();
    search.eval.gaussian = true;
    search.eval.mean_a = std::strtod(parts[0].c_str(), nullptr);
    search.eval.sigma_a = std::strtod(parts[1].c_str(), nullptr);
    search.eval.mean_b = std::strtod(parts[2].c_str(), nullptr);
    search.eval.sigma_b = std::strtod(parts[3].c_str(), nullptr);
  }
  if (!opt.analytic) search.eval.analytic = false;
  const int rc = explore_with(space, search, opt.smoke);
  if (rc != 0) return rc;
  if (opt.smoke && !smoke_analytic_anchor()) return 1;
  return 0;
}

int cmd_resume(const Options& opt) {
  if (opt.positional.empty()) usage();
  dse::SpaceSpec space;
  dse::SearchOptions search;
  dse::load_checkpoint(opt.positional, space, search);
  search.farm_workers = opt.farm_workers;
  search.farm_socket = opt.farm_socket;
  attach_progress(search, opt.quiet);
  std::printf("resuming %s search over '%s' from %s\n", dse::strategy_name(search.strategy),
              space.name.c_str(), opt.positional.c_str());
  return explore_with(space, search, false);
}

int cmd_front(const Options& opt) {
  if (opt.positional.empty()) usage();
  print_front(dse::load_front(opt.positional), "Front file " + opt.positional);
  return 0;
}

int cmd_export(const Options& opt) {
  if (opt.positional.empty()) usage();
  const std::vector<dse::EvaluatedPoint> front = dse::load_front(opt.positional);
  if (opt.index >= front.size()) {
    throw std::runtime_error("axdse: --index " + std::to_string(opt.index) +
                             " out of range (front has " + std::to_string(front.size()) +
                             " points)");
  }
  const dse::Config& config = front[opt.index].config;
  const std::string name = dse::display_name(config);
  const fabric::Netlist nl = dse::make_config_netlist(config);
  std::string hdl;
  if (opt.hdl == "verilog") {
    hdl = fabric::to_verilog(nl, name);
  } else if (opt.hdl == "vhdl") {
    hdl = fabric::to_vhdl(nl, name);
  } else {
    usage();
  }
  if (opt.out.empty()) {
    std::fputs(hdl.c_str(), stdout);
    return 0;
  }
  std::ofstream out(opt.out);
  if (!out) throw std::runtime_error("axdse: cannot write '" + opt.out + "'");
  out << hdl;
  std::printf("wrote %s (%s, %s)\n", opt.out.c_str(), name.c_str(), opt.hdl.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(strip_thread_args(argc, argv));
    if (opt.command == "spaces") return cmd_spaces();
    if (opt.command == "explore") return cmd_explore(opt);
    if (opt.command == "resume") return cmd_resume(opt);
    if (opt.command == "front") return cmd_front(opt);
    if (opt.command == "export") return cmd_export(opt);
    if (opt.command == "cache-compact") return cmd_cache_compact(opt);
    std::fprintf(stderr, "axdse: unknown command '%s'\n", opt.command.c_str());
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axdse: %s\n", e.what());
    return 1;
  }
}
