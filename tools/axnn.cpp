// axnn — quantized NN inference driver over the approximate-multiplier
// MAC backends.
//
// Train-free workflow: the bundled digits network computes its weights from
// jittered glyph templates, so every command works offline with no
// training artifacts. Weights still round-trip through the flat .axnn
// container so external pipelines can swap in their own.
//
//   axnn backends                 list MAC backends (cost + error metrics)
//   axnn save-demo <file.axnn>    export the demo network's float weights
//   axnn run [options]            evaluate one backend, emit a JSON report
//   axnn compare [options]        accuracy-vs-EDP sweep across backends
//
// Adaptive mode (axnn run --adaptive): inference runs under the runtime
// precision controller (src/adapt) — panels of GEMM rows are computed on
// the cheapest rung of a backend ladder, a drift monitor scores each panel
// against an exact shadow subsample, and the hysteresis policy hot-swaps
// the fabric (CFGLUT INIT rewrites, charged by bit-delta) to keep the
// measured output error under --slo. The run fails (exit 1) if the final
// measured output MRE exceeds the SLO.
//   --adaptive            enable the controller              (run only)
//   --slo X               output-MRE service-level objective (default 0.05)
//   --ladder A,B,C        registry backends for the ladder   (default cc8,ca8,exact)
//   --ladder-from-front F build the ladder from an axdse front JSON
//   --panel-rows N        reconfiguration granularity        (default 64)
//   --probes N            exact-shadow probes per panel      (default 8)
//   --batch N             serving batch size                 (default 8)
//   --slack L=V,...       per-layer error attenuation divisors (measured
//                         layer-to-output shrink; >= 1)
//   --require-win         also fail unless adaptive EDP/inference beats the
//                         static exact baseline
//
// Common options:
//   --backend NAME   MAC backend for every layer       (default exact)
//   --swap           enable the operand-swap trick on every MAC layer
//   --weights FILE   load weights from an .axnn container
//   --samples N      test-set size                     (default 512)
//   --calib N        calibration-set size              (default 256)
//   --seed S         dataset seed                      (default 9)
//   --bits B         operand width                     (default 8)
//   --json FILE      write the report JSON to FILE     (run: default stdout)
//   --backends A,B   compare: comma-separated backend list
//   --backend-from-front FILE
//                    compare: also evaluate the winners of an axdse front
//                    JSON (tabulated via dse::make_backend)
//   --front-index N  compare: only point N of the front (default: all)
//   --threads N      worker threads (also AXMULT_THREADS)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/ladder.hpp"
#include "common/parallel_for.hpp"
#include "common/provenance.hpp"
#include "common/table.hpp"
#include "nn/dataset.hpp"
#include "nn/graph.hpp"
#include "nn/mac.hpp"
#include "nn/weights.hpp"

using namespace axmult;
using namespace axmult::nn;

namespace {

struct Options {
  std::string command;
  std::string backend = "exact";
  std::string backends;  // compare: comma-separated
  std::string weights;
  std::string json;
  std::string from_front;  // compare: axdse front JSON with extra backends
  std::string positional;
  std::string ladder;             // adaptive: comma-separated rung names
  std::string ladder_from_front;  // adaptive: axdse front JSON
  std::string slack;              // adaptive: layer=divisor list
  std::uint64_t samples = 512;
  std::uint64_t calib = 256;
  std::uint64_t seed = 9;
  std::uint64_t panel_rows = 64;
  std::uint64_t probes = 8;
  std::uint64_t batch = 8;
  double slo = 0.05;
  unsigned bits = 8;
  long front_index = -1;  // compare: -1 = every front point
  bool swap = false;
  bool adaptive = false;
  bool require_win = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: axnn <backends|save-demo|run|compare> [options]\n"
               "  see the header of tools/axnn.cpp for the option list\n");
  std::exit(2);
}

Options parse(const std::vector<std::string>& args) {
  Options opt;
  if (args.empty()) usage();
  opt.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage();
      return args[++i];
    };
    if (a == "--backend") {
      opt.backend = value();
    } else if (a == "--backends") {
      opt.backends = value();
    } else if (a == "--weights") {
      opt.weights = value();
    } else if (a == "--json") {
      opt.json = value();
    } else if (a == "--backend-from-front") {
      opt.from_front = value();
    } else if (a == "--front-index") {
      opt.front_index = std::strtol(value().c_str(), nullptr, 10);
    } else if (a == "--samples") {
      opt.samples = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--calib") {
      opt.calib = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--seed") {
      opt.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--bits") {
      opt.bits = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (a == "--swap") {
      opt.swap = true;
    } else if (a == "--adaptive") {
      opt.adaptive = true;
    } else if (a == "--require-win") {
      opt.require_win = true;
    } else if (a == "--slo") {
      opt.slo = std::strtod(value().c_str(), nullptr);
    } else if (a == "--ladder") {
      opt.ladder = value();
    } else if (a == "--ladder-from-front") {
      opt.ladder_from_front = value();
    } else if (a == "--panel-rows") {
      opt.panel_rows = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--probes") {
      opt.probes = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--batch") {
      opt.batch = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--slack") {
      opt.slack = value();
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "axnn: unknown option '%s'\n", a.c_str());
      usage();
    } else if (opt.positional.empty()) {
      opt.positional = a;
    } else {
      usage();
    }
  }
  return opt;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// The demo network, optionally re-weighted from an .axnn container, and
/// calibrated on a dedicated calibration set.
Sequential prepare_network(const Options& opt) {
  Sequential net = make_digits_network();
  if (!opt.weights.empty()) net.import_weights(load_tensors(opt.weights));
  const Dataset calib = make_digits(opt.calib, opt.seed + 1);
  net.calibrate(calib.images, opt.bits);
  return net;
}

NetworkReport evaluate_backend(Sequential& net, const MacBackendPtr& backend, bool swap,
                               const Dataset& test) {
  net.set_backend(backend);
  for (std::size_t i = 0; i < net.size(); ++i) net.set_layer_swap(i, swap);
  const QTensor inputs = net.quantize_input(test.images);
  return net.evaluate(inputs, test.labels);
}

/// The backends a compare run evaluates: the named library backends plus,
/// when --backend-from-front is given, the winners of an axdse front JSON
/// (one or all of its points). Front points the NN data path cannot use
/// (signed wrappers, widths the tabulation rejects) are skipped with a
/// warning instead of aborting the sweep.
std::vector<std::pair<std::string, MacBackendPtr>> compare_backends(const Options& opt) {
  const std::vector<std::string> names =
      opt.backends.empty()
          ? std::vector<std::string>{"exact", "ca8", "cas8", "cc8", "cb8", "trunc8_4"}
          : split_csv(opt.backends);
  std::vector<std::pair<std::string, MacBackendPtr>> entries;
  for (const std::string& name : names) entries.emplace_back(name, make_mac_backend(name));
  if (!opt.from_front.empty()) {
    // adapt::backends_from_front owns the error handling: unreadable files,
    // malformed JSON lines, and fronts with no usable unsigned config all
    // surface as one-line errors instead of a crash or a silent empty sweep.
    std::vector<adapt::FrontBackend> front = adapt::backends_from_front(opt.from_front);
    if (opt.front_index >= 0 && static_cast<std::size_t>(opt.front_index) >= front.size()) {
      throw std::runtime_error("axnn: --front-index " + std::to_string(opt.front_index) +
                               " out of range (front has " + std::to_string(front.size()) +
                               " usable points)");
    }
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (opt.front_index >= 0 && static_cast<std::size_t>(opt.front_index) != i) continue;
      entries.emplace_back(front[i].backend->name(), std::move(front[i].backend));
    }
  }
  return entries;
}

void emit_json(const NetworkReport& report, const std::string& path) {
  const std::string doc = to_json(report);
  if (path.empty()) {
    std::fputs(doc.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("axnn: cannot write '" + path + "'");
  out << doc;
  std::printf("wrote %s\n", path.c_str());
}

int cmd_backends() {
  Table t({"Backend", "Data bits", "Exact", "LUTs", "CARRY4", "Crit path (ns)",
           "Energy/MAC (a.u.)", "MRE", "Max error"});
  for (const std::string& name : mac_backend_names()) {
    const auto b = make_mac_backend(name);
    const auto& m = b->metrics();
    t.add_row({name, std::to_string(b->data_bits()), b->exact() ? "yes" : "no",
               std::to_string(b->cost().luts), std::to_string(b->cost().carry4),
               Table::num(b->cost().critical_path_ns, 3),
               Table::num(b->cost().energy_per_mac_au, 3),
               Table::num(m.avg_relative_error, 6), std::to_string(m.max_error)});
  }
  t.print("MAC backends (cost per multiplier instance; metrics over the tabulated space)");
  return 0;
}

int cmd_save_demo(const Options& opt) {
  if (opt.positional.empty()) usage();
  save_tensors(opt.positional, make_digits_network().export_weights());
  std::printf("wrote %s\n", opt.positional.c_str());
  return 0;
}

/// axnn run --adaptive: inference under the runtime precision controller.
/// Exit 1 when the measured output MRE misses the SLO (and, with
/// --require-win, when adaptive EDP/inference fails to beat static exact).
int cmd_run_adaptive(const Options& opt) {
  adapt::Ladder ladder =
      !opt.ladder_from_front.empty()
          ? adapt::ladder_from_front(opt.ladder_from_front)
          : adapt::make_ladder(opt.ladder.empty()
                                   ? std::vector<std::string>{"cc8", "ca8", "exact"}
                                   : split_csv(opt.ladder));
  std::printf("ladder: %s\n", ladder.describe().c_str());

  adapt::ControllerConfig cfg;
  cfg.panel_rows = opt.panel_rows;
  cfg.monitor.seed = opt.seed + 2;
  cfg.monitor.probes_per_panel = opt.probes;
  cfg.policy.slo = opt.slo;
  for (const std::string& tok : split_csv(opt.slack)) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("axnn: --slack wants LAYER=DIVISOR entries, got '" + tok + "'");
    }
    cfg.layer_slack.emplace_back(tok.substr(0, eq),
                                 std::strtod(tok.c_str() + eq + 1, nullptr));
  }
  const adapt::Rung& exact_rung = ladder.rungs.back();
  adapt::Controller controller(std::move(ladder), cfg);

  Sequential net = prepare_network(opt);
  net.set_backend(make_mac_backend("exact"));
  const Dataset test = make_digits(opt.samples, opt.seed);

  // Serve the test set in batches: the controller's policies carry over,
  // so later batches run at whatever rungs earlier batches earned.
  const std::size_t total = test.images.shape.empty() ? 0 : test.images.shape[0];
  const std::size_t batch = std::max<std::size_t>(1, opt.batch);
  const std::size_t per_sample = total ? test.images.data.size() / total : 0;
  double mre_weighted = 0.0;
  std::size_t mre_cells = 0;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < total; start += batch) {
    const std::size_t count = std::min(batch, total - start);
    Tensor chunk;
    chunk.shape = test.images.shape;
    chunk.shape[0] = static_cast<unsigned>(count);
    chunk.data.assign(test.images.data.begin() + start * per_sample,
                      test.images.data.begin() + (start + count) * per_sample);
    const QTensor in = net.quantize_input(chunk);
    const QTensor out = net.run_planned(in, controller);
    const QTensor exact_out = net.run(in);
    mre_weighted += output_mre(out, exact_out) * static_cast<double>(out.elems());
    mre_cells += out.elems();
    const std::size_t cols = count ? out.elems() / count : 0;
    for (std::size_t r = 0; r < count; ++r) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < cols; ++c) {
        if (out.data[r * cols + c] > out.data[r * cols + best]) best = c;
      }
      if (static_cast<int>(best) == test.labels[start + r]) ++correct;
    }
  }
  const double measured_mre = mre_cells ? mre_weighted / static_cast<double>(mre_cells) : 0.0;
  const double top1 = total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;

  const adapt::Report report = controller.report(opt.samples);

  // Static exact baseline: the same executed MAC volume, every MAC at the
  // exact rung's *static* (untaxed) cost — the honest handicap against the
  // CFGLUT-taxed adaptive ledger.
  std::uint64_t macs_per_inf = 0;
  Shape unit = test.images.shape;
  unit[0] = 1;
  for (std::size_t i = 0; i < net.size(); ++i) {
    macs_per_inf += net.layer(i).gemm_shape(unit).macs();
    unit = net.layer(i).out_shape(unit);
  }
  const double exact_edp_per_inf = static_cast<double>(macs_per_inf) *
                                   exact_rung.static_cost.energy_per_mac_au *
                                   exact_rung.static_cost.critical_path_ns;

  std::printf(
      "adaptive slo=%.4g measured_mre=%.4g top1=%.4f swaps=%zu "
      "edp_per_inf=%.6g exact_static_edp_per_inf=%.6g\n",
      opt.slo, measured_mre, top1, report.swaps.size(), report.edp_per_inference_au,
      exact_edp_per_inf);

  if (!opt.json.empty()) {
    std::ofstream outf(opt.json);
    if (!outf) throw std::runtime_error("axnn: cannot write '" + opt.json + "'");
#ifdef AXMULT_SOURCE_DIR
    const char* source_dir = AXMULT_SOURCE_DIR;
#else
    const char* source_dir = nullptr;
#endif
    outf << "{\n  " << common::provenance_fields(source_dir, thread_count(), opt.seed)
         << ",\n  \"measured_output_mre\": " << measured_mre
         << ",\n  \"top1_accuracy\": " << top1
         << ",\n  \"exact_static_edp_per_inference_au\": " << exact_edp_per_inf
         << ",\n  \"controller\": " << report.to_json() << "}\n";
    std::printf("wrote %s\n", opt.json.c_str());
  }

  if (measured_mre > opt.slo) {
    std::fprintf(stderr, "axnn: SLO violated (measured output MRE %.4g > %.4g)\n",
                 measured_mre, opt.slo);
    return 1;
  }
  if (opt.require_win && report.edp_per_inference_au >= exact_edp_per_inf) {
    std::fprintf(stderr,
                 "axnn: adaptive EDP/inference %.6g does not beat static exact %.6g\n",
                 report.edp_per_inference_au, exact_edp_per_inf);
    return 1;
  }
  return 0;
}

int cmd_run(const Options& opt) {
  if (opt.adaptive) return cmd_run_adaptive(opt);
  Sequential net = prepare_network(opt);
  const Dataset test = make_digits(opt.samples, opt.seed);
  const NetworkReport report = evaluate_backend(net, make_mac_backend(opt.backend), opt.swap, test);
  std::printf("backend=%s swap=%d samples=%llu top1=%.4f macs=%llu edp_au=%.4g\n",
              opt.backend.c_str(), opt.swap ? 1 : 0,
              static_cast<unsigned long long>(report.samples), report.top1_accuracy,
              static_cast<unsigned long long>(report.macs), report.edp_au);
  emit_json(report, opt.json);
  return 0;
}

int cmd_compare(const Options& opt) {
  const std::vector<std::pair<std::string, MacBackendPtr>> entries = compare_backends(opt);
  Sequential net = prepare_network(opt);
  const Dataset test = make_digits(opt.samples, opt.seed);

  std::vector<NetworkReport> reports;
  for (const auto& [name, backend] : entries) {
    reports.push_back(evaluate_backend(net, backend, opt.swap, test));
  }

  Table t({"Backend", "Top-1", "MAC LUTs", "Crit path (ns)", "Energy/inf (a.u.)",
           "EDP (a.u.)", "Worst layer MRE"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const NetworkReport& r = reports[i];
    std::uint64_t luts = 0;
    double worst_mre = 0.0;
    for (const auto& lr : r.layers) {
      if (lr.backend.empty()) continue;
      luts = std::max(luts, lr.cost.luts);
      worst_mre = std::max(worst_mre, lr.output_mre);
    }
    t.add_row({entries[i].first, Table::num(r.top1_accuracy, 4), std::to_string(luts),
               Table::num(r.critical_path_ns, 3), Table::num(r.energy_per_inference_au, 1),
               Table::num(r.edp_au, 1), Table::num(worst_mre, 5)});
  }
  t.print("Accuracy vs hardware cost (" + std::to_string(opt.samples) + " samples, swap=" +
          (opt.swap ? std::string("on") : std::string("off")) + ")");

  if (!opt.json.empty()) {
    std::ofstream out(opt.json);
    if (!out) throw std::runtime_error("axnn: cannot write '" + opt.json + "'");
    // Same provenance block as the BENCH_*.json artifacts, so a compare
    // report names the revision/threads/seed that produced it.
#ifdef AXMULT_SOURCE_DIR
    const char* source_dir = AXMULT_SOURCE_DIR;
#else
    const char* source_dir = nullptr;
#endif
    out << "{\n  " << common::provenance_fields(source_dir, thread_count(), opt.seed)
        << ",\n  \"samples\": " << opt.samples << ",\n  \"swap\": "
        << (opt.swap ? "true" : "false") << ",\n  \"reports\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      out << to_json(reports[i]) << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "]\n}\n";
    std::printf("wrote %s\n", opt.json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(strip_thread_args(argc, argv));
    if (opt.command == "backends") return cmd_backends();
    if (opt.command == "save-demo") return cmd_save_demo(opt);
    if (opt.command == "run") return cmd_run(opt);
    if (opt.command == "compare") return cmd_compare(opt);
    std::fprintf(stderr, "axnn: unknown command '%s'\n", opt.command.c_str());
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axnn: %s\n", e.what());
    return 1;
  }
}
