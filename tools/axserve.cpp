// axserve — concurrent characterization-and-inference daemon and client.
//
//   axserve serve [options]         run the daemon in the foreground
//                                   (SIGINT/SIGTERM shut it down cleanly)
//   axserve ping [options]          round-trip a ping, print the version
//   axserve stats [options]         print the daemon's counter snapshot
//   axserve characterize <key>      evaluate one dse config via the daemon
//   axserve shutdown                ask the daemon to exit
//   axserve loadgen [options]       drive a load-generation run and print
//                                   the throughput/latency/reuse report
//
// Common options:
//   --socket PATH       Unix-domain socket path     (default axserve.sock)
//
// serve options:
//   --workers N         characterization workers    (default 2)
//   --gemm-threads N    threads per merged GEMM     (default 1)
//   --cache FILE        persistent EvalCache path   (default: in-memory)
//   --samples N / --exhaustive-bits N / --seed S / --no-analytic
//                       default EvalOptions served to clients
//
// characterize options:
//   --deadline MS       per-request deadline in milliseconds
//
// loadgen options:
//   --spawn             fork a private daemon for the run and shut it
//                       down afterwards (no external server needed)
//   --clients N         concurrent client connections       (default 8)
//   --duration S        run length in seconds               (default 5)
//   --rate R            open-loop req/s per client          (default closed loop)
//   --infer-fraction F  P(infer) vs characterize            (default 0.5)
//   --backend NAME      infer backend                       (default ca8)
//   --json FILE         write the report JSON to FILE
//   --smoke             short CI run: 8 clients, 2 seconds
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/provenance.hpp"
#include "dse/cache.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

using namespace axmult;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: axserve <serve|ping|stats|characterize|shutdown|loadgen> [options]\n"
               "  see the header of tools/axserve.cpp for the option list\n");
  std::exit(2);
}

serve::Server* g_signal_server = nullptr;

void handle_signal(int) {
  if (g_signal_server != nullptr) g_signal_server->request_stop();
}

struct Options {
  std::string command;
  std::string socket = "axserve.sock";
  std::string cache;
  std::string json;
  std::string key;
  std::string backend = "ca8";
  unsigned workers = 2;
  unsigned gemm_threads = 1;
  unsigned clients = 8;
  double duration_s = 5.0;
  double rate = 0.0;
  double infer_fraction = 0.5;
  double deadline_ms = -1.0;
  long exhaustive_bits = -1;
  long long samples = -1;
  std::uint64_t seed = 1;
  bool analytic = true;
  bool spawn = false;
  bool smoke = false;
};

serve::ServerOptions server_options(const Options& opt) {
  serve::ServerOptions so;
  so.socket_path = opt.socket;
  so.workers = opt.workers;
  so.gemm_threads = opt.gemm_threads;
  so.cache_path = opt.cache;
  if (opt.exhaustive_bits >= 0) so.eval.exhaustive_bits = static_cast<unsigned>(opt.exhaustive_bits);
  if (opt.samples >= 0) so.eval.samples = static_cast<std::uint64_t>(opt.samples);
  so.eval.seed = opt.seed;
  so.eval.analytic = opt.analytic;
  return so;
}

int cmd_serve(const Options& opt) {
  serve::Server server(server_options(opt));
  server.start();
  g_signal_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("axserve: listening on %s (%u workers)\n", server.socket_path().c_str(),
              opt.workers);
  server.wait();
  std::printf("axserve: shutting down\n");
  server.stop();
  g_signal_server = nullptr;
  const serve::ServerStats s = server.stats();
  std::printf("axserve: served %llu requests (%llu evaluations, %llu GEMM batches)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.evaluations),
              static_cast<unsigned long long>(s.gemm_batches));
  return 0;
}

int cmd_ping(const Options& opt) {
  serve::Client client(opt.socket);
  if (!client.ping()) {
    std::fprintf(stderr, "axserve: ping failed\n");
    return 1;
  }
  std::printf("axserve: pong (protocol v%u) from %s\n", serve::kProtocolVersion,
              opt.socket.c_str());
  return 0;
}

int cmd_stats(const Options& opt) {
  serve::Client client(opt.socket);
  std::printf("%s\n", client.stats_json().c_str());
  return 0;
}

int cmd_characterize(const Options& opt) {
  if (opt.key.empty()) usage();
  serve::Client client(opt.socket);
  const serve::Reply reply = client.characterize(opt.key, opt.deadline_ms);
  if (!reply.ok) {
    std::fprintf(stderr, "axserve: characterize failed: %s%s\n",
                 reply.error.empty() ? "unknown error" : reply.error.c_str(),
                 reply.retry ? " (server busy, retry later)" : "");
    return 1;
  }
  std::printf("{\"key\": \"%s\", \"cached\": %s, \"coalesced\": %s, %s}\n", opt.key.c_str(),
              reply.cached ? "true" : "false", reply.coalesced ? "true" : "false",
              dse::EvalCache::serialize_objectives(reply.objectives).c_str());
  return 0;
}

int cmd_shutdown(const Options& opt) {
  serve::Client client(opt.socket);
  if (!client.shutdown_server()) {
    std::fprintf(stderr, "axserve: daemon did not acknowledge shutdown\n");
    return 1;
  }
  std::printf("axserve: daemon at %s acknowledged shutdown\n", opt.socket.c_str());
  return 0;
}

int cmd_loadgen(Options opt) {
  if (opt.smoke) {
    opt.clients = 8;
    opt.duration_s = 2.0;
  }
  // --spawn: run a private daemon inside this process for the duration of
  // the load run. Threads only — no fork needed, the loadgen clients go
  // through the real socket either way.
  std::unique_ptr<serve::Server> spawned;
  if (opt.spawn) {
    spawned = std::make_unique<serve::Server>(server_options(opt));
    spawned->start();
  }

  serve::LoadgenOptions lg;
  lg.socket_path = opt.socket;
  lg.clients = opt.clients;
  lg.duration_s = opt.duration_s;
  lg.rate_per_client = opt.rate;
  lg.infer_fraction = opt.infer_fraction;
  lg.backend = opt.backend;
  lg.seed = opt.seed;
  int rc = 0;
  try {
    const serve::LoadgenReport report = serve::run_loadgen(lg);
    std::printf("axserve loadgen: %llu requests in %.2fs over %u clients\n",
                static_cast<unsigned long long>(report.requests), report.duration_s,
                lg.clients);
    std::printf("  %.0f req/s, p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, max %.3f ms\n",
                report.rps, report.p50_ms, report.p90_ms, report.p99_ms, report.max_ms);
    std::printf("  ok %llu, retried %llu, deadline %llu, errors %llu\n",
                static_cast<unsigned long long>(report.ok),
                static_cast<unsigned long long>(report.retried),
                static_cast<unsigned long long>(report.deadline),
                static_cast<unsigned long long>(report.errors));
    std::printf("  characterize reuse %.1f%% (cache %.1f%%, coalesced %.1f%%); "
                "batch fill %.2f requests / %.1f rows\n",
                100.0 * report.reuse_rate, 100.0 * report.cache_hit_rate,
                100.0 * report.coalesce_rate, report.batch_fill_requests,
                report.batch_fill_rows);
    if (!opt.json.empty()) {
      std::ofstream out(opt.json);
      if (!out) throw std::runtime_error("axserve: cannot write '" + opt.json + "'");
      out << serve::loadgen_json(
          lg, report, common::provenance_fields(nullptr, thread_count(), opt.seed));
      std::printf("wrote %s\n", opt.json.c_str());
    }
    // A loadgen run that moved no requests is a failure (the CI smoke
    // asserts sustained throughput, not just a clean boot).
    if (report.requests == 0 || report.ok == 0 || report.errors > 0) {
      std::fprintf(stderr, "axserve loadgen: FAILED (requests=%llu ok=%llu errors=%llu)\n",
                   static_cast<unsigned long long>(report.requests),
                   static_cast<unsigned long long>(report.ok),
                   static_cast<unsigned long long>(report.errors));
      rc = 1;
    }
  } catch (...) {
    if (spawned) spawned->stop();
    throw;
  }
  if (spawned) spawned->stop();
  return rc;
}

std::uint64_t to_u64(const std::string& s) { return std::strtoull(s.c_str(), nullptr, 10); }

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args = strip_thread_args(argc, argv);
  if (args.empty()) usage();

  Options opt;
  opt.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage();
      return args[i];
    };
    if (a == "--socket") opt.socket = value();
    else if (a == "--workers") opt.workers = static_cast<unsigned>(to_u64(value()));
    else if (a == "--gemm-threads") opt.gemm_threads = static_cast<unsigned>(to_u64(value()));
    else if (a == "--cache") opt.cache = value();
    else if (a == "--samples") opt.samples = static_cast<long long>(to_u64(value()));
    else if (a == "--exhaustive-bits") opt.exhaustive_bits = static_cast<long>(to_u64(value()));
    else if (a == "--seed") opt.seed = to_u64(value());
    else if (a == "--no-analytic") opt.analytic = false;
    else if (a == "--deadline") opt.deadline_ms = std::strtod(value().c_str(), nullptr);
    else if (a == "--clients") opt.clients = static_cast<unsigned>(to_u64(value()));
    else if (a == "--duration") opt.duration_s = std::strtod(value().c_str(), nullptr);
    else if (a == "--rate") opt.rate = std::strtod(value().c_str(), nullptr);
    else if (a == "--infer-fraction") opt.infer_fraction = std::strtod(value().c_str(), nullptr);
    else if (a == "--backend") opt.backend = value();
    else if (a == "--json") opt.json = value();
    else if (a == "--spawn") opt.spawn = true;
    else if (a == "--smoke") opt.smoke = true;
    else if (!a.empty() && a[0] != '-' && opt.key.empty()) opt.key = a;
    else usage();
  }

  try {
    if (opt.command == "serve") return cmd_serve(opt);
    if (opt.command == "ping") return cmd_ping(opt);
    if (opt.command == "stats") return cmd_stats(opt);
    if (opt.command == "characterize") return cmd_characterize(opt);
    if (opt.command == "shutdown") return cmd_shutdown(opt);
    if (opt.command == "loadgen") return cmd_loadgen(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axserve: %s\n", e.what());
    return 2;
  }
  usage();
}
